"""The user-facing full-cycle simulator (Figure 14's kernel executable).

Compiles an RTL design (FIRRTL text, a flattened design, or a dataflow
graph) down to an OIM bundle plus an executable kernel, and exposes the
conventional simulator interface: ``poke`` / ``peek`` / ``step`` / ``reset``.

Registers commit in two phases at each clock edge so that register-to-
register moves (``r1 <= r2; r2 <= r1``) behave like hardware.  Multi-clock
designs are supported by partitioning register commits per clock domain and
synchronising at cycle end (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from ..firrtl.elaborate import FlatDesign, elaborate
from ..firrtl.parser import parse
from ..firrtl.primops import mask
from ..graph.build import build_dfg
from ..graph.dfg import DataflowGraph
from ..graph.optimize import optimize
from ..kernels.config import KernelConfig, get_kernel_config
from ..kernels.pykernels import Kernel, make_kernel
from ..oim.builder import OimBundle, build_oim

DesignLike = Union[str, FlatDesign, DataflowGraph, OimBundle]


def compile_design(
    design: DesignLike,
    optimize_graph: bool = True,
    preserve_signals: bool = False,
) -> OimBundle:
    """Lower any accepted design form to an :class:`OimBundle`.

    When the :mod:`repro.serve` artifact cache is active (see
    :func:`repro.serve.artifacts.get_cache`), the lowered bundle is
    cached content-addressed -- keyed by the source digest for FIRRTL
    text, by the canonical graph fingerprint for a
    :class:`DataflowGraph` -- so a warm second process skips
    elaboration, optimisation, and OIM lowering entirely.
    """
    if isinstance(design, OimBundle):
        return design
    from ..serve import artifacts

    if artifacts.get_cache() is not None:
        digest = None
        if isinstance(design, str):
            digest = artifacts.source_digest(
                design, stage="bundle", optimize_graph=optimize_graph,
                preserve_signals=preserve_signals,
            )
        elif isinstance(design, DataflowGraph):
            digest = artifacts.design_fingerprint(
                design, stage="bundle", optimize_graph=optimize_graph,
                preserve_signals=preserve_signals,
            )
        if digest is not None:
            def _build() -> OimBundle:
                bundle = _compile_design_uncached(
                    design, optimize_graph, preserve_signals
                )
                # Prime the fingerprint memo so the pickled artifact
                # carries it; warm loads then skip re-hashing the layers.
                artifacts.bundle_fingerprint(bundle)
                return bundle

            return artifacts.cache_through("bundle", digest, _build)
    return _compile_design_uncached(design, optimize_graph, preserve_signals)


def _compile_design_uncached(
    design: DesignLike,
    optimize_graph: bool,
    preserve_signals: bool,
) -> OimBundle:
    if isinstance(design, str):
        design = elaborate(parse(design))
    if isinstance(design, FlatDesign):
        design = build_dfg(design)
    if isinstance(design, DataflowGraph):
        if optimize_graph:
            design, _ = optimize(design, preserve_signals=preserve_signals)
        return build_oim(design)
    raise TypeError(f"cannot compile {type(design).__name__} into a design")


def compile_graph(
    design: DesignLike,
    optimize_graph: bool = True,
    preserve_signals: bool = False,
) -> DataflowGraph:
    """Lower any accepted design form to an (optionally optimised)
    :class:`DataflowGraph`, stopping *before* OIM lowering.

    The partitioned simulators (:mod:`repro.repcut`,
    :mod:`repro.shard`) partition the graph itself, so they need the
    frontend pipeline up to -- but not past -- the graph.  A
    :class:`DataflowGraph` argument is passed through untouched (callers
    hand over pre-optimised graphs); an :class:`OimBundle` has already
    been lowered past the graph and is rejected.

    FIRRTL-text compiles are cached by the :mod:`repro.serve` artifact
    cache when it is active, keyed by the source digest, so a warm
    process skips parse/elaborate/optimise.
    """
    if isinstance(design, OimBundle):
        raise TypeError(
            "an OimBundle has already been lowered past the dataflow "
            "graph; pass FIRRTL text, a FlatDesign, or a DataflowGraph"
        )
    if isinstance(design, DataflowGraph):
        return design
    if isinstance(design, str):
        from ..serve import artifacts

        if artifacts.get_cache() is not None:
            digest = artifacts.source_digest(
                design, stage="graph", optimize_graph=optimize_graph,
                preserve_signals=preserve_signals,
            )
            def _build() -> DataflowGraph:
                graph = _compile_graph_uncached(
                    design, optimize_graph, preserve_signals
                )
                # Prime the fingerprint memo into the pickled artifact:
                # partitioning re-fingerprints this graph on warm starts.
                artifacts.design_fingerprint(graph)
                return graph

            return artifacts.cache_through("graph", digest, _build)
        return _compile_graph_uncached(design, optimize_graph, preserve_signals)
    if isinstance(design, FlatDesign):
        return _compile_graph_uncached(design, optimize_graph, preserve_signals)
    raise TypeError(f"cannot compile {type(design).__name__} into a design")


def _compile_graph_uncached(
    design: Union[str, FlatDesign],
    optimize_graph: bool,
    preserve_signals: bool,
) -> DataflowGraph:
    if isinstance(design, str):
        design = elaborate(parse(design))
    graph = build_dfg(design)
    if optimize_graph:
        graph, _ = optimize(graph, preserve_signals=preserve_signals)
    return graph


def group_commits_by_clock(bundle: OimBundle) -> Dict[str, List[Tuple[int, int]]]:
    """Partition register commits per clock domain (Section 6.2).

    Shared by the scalar simulator and :class:`repro.batch.BatchSimulator`.
    """
    groups: Dict[str, List[Tuple[int, int]]] = {}
    clocks = bundle.register_clocks or ["clock"] * len(bundle.register_commits)
    for commit, clock in zip(bundle.register_commits, clocks):
        groups.setdefault(clock, []).append(commit)
    return groups


@dataclass
class SimSnapshot:
    """A cheap checkpoint of simulator state (see ``Simulator.snapshot``)."""

    values: List[int]
    cycle: int


class Simulator:
    """Full-cycle RTL simulator backed by an RTeAAL kernel.

    Parameters
    ----------
    design:
        FIRRTL source text, a :class:`FlatDesign`, a :class:`DataflowGraph`,
        or a pre-built :class:`OimBundle`.
    kernel:
        Kernel configuration name (``"RU"`` ... ``"TI"``) or a
        :class:`KernelConfig`.  Defaults to the PSU sweet spot.
    preserve_signals:
        Keep named intermediate signals observable (required for waveform
        dumping; disables signal-eliminating optimisations, Section 6.2).
    """

    def __init__(
        self,
        design: DesignLike,
        kernel: Union[str, KernelConfig] = "PSU",
        optimize_graph: bool = True,
        preserve_signals: bool = False,
    ) -> None:
        self.bundle = compile_design(design, optimize_graph, preserve_signals)
        activity_aware = False
        if isinstance(kernel, str):
            name = kernel.strip().lower()
            if name.startswith("activity"):
                # "activity" or "activity:PSU" -- Box 1's activity-aware
                # cascade wrapped around a kernel configuration.
                _, _, base = name.partition(":")
                kernel = get_kernel_config(base or "PSU")
                activity_aware = True
            else:
                kernel = get_kernel_config(kernel)
        extra_stores: Optional[Set[int]] = None
        if preserve_signals:
            extra_stores = set(self.bundle.signal_slots.values())
        if activity_aware:
            from ..kernels.activity import ActivityAwareKernel

            self.kernel: Kernel = ActivityAwareKernel(self.bundle, kernel)
        else:
            self.kernel = make_kernel(self.bundle, kernel, extra_stores=extra_stores)
        self.values: List[int] = self.bundle.initial_values()
        self.cycle = 0
        self._dirty = True
        self._commits_by_clock = group_commits_by_clock(self.bundle)
        self._poked: Set[str] = set()

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------
    def poke(self, name: str, value: int) -> None:
        slot = self.bundle.input_slots.get(name)
        if slot is None:
            raise KeyError(f"{name!r} is not an input of {self.bundle.design_name}")
        self.values[slot] = mask(value, self.bundle.slot_width[slot])
        self._poked.add(name)
        self._dirty = True

    @property
    def unpoked_inputs(self) -> Set[str]:
        """Inputs never driven since construction.

        Before the first clock edge these carry the default 0 rather
        than a user-chosen value; :class:`~repro.sim.VcdWriter` dumps
        them as ``x`` until the first ``step`` commits the default.
        """
        return set(self.bundle.input_slots) - self._poked

    def peek(self, name: str) -> int:
        slot = self.bundle.signal_slots.get(name)
        if slot is None:
            raise KeyError(
                f"unknown signal {name!r}; it may have been optimised away "
                "(construct the Simulator with preserve_signals=True)"
            )
        self._settle()
        return self.values[slot]

    def peek_slot(self, slot: int) -> int:
        self._settle()
        return self.values[slot]

    def reset(self) -> None:
        """Restore registers and constants to their initial values.

        Poked input values are preserved, matching common simulator
        behaviour.
        """
        inputs = {name: self.values[slot] for name, slot in self.bundle.input_slots.items()}
        self.values = self.bundle.initial_values()
        for name, value in inputs.items():
            self.values[self.bundle.input_slots[name]] = value
        self.cycle = 0
        self._dirty = True
        # The fresh plane's intermediates are unsettled: an activity
        # kernel must not diff leaves against the pre-reset world.
        self.kernel.invalidate()

    def step(self, cycles: int = 1) -> None:
        """Advance all clock domains by ``cycles`` edges."""
        for _ in range(cycles):
            self._settle()
            self._commit(self.bundle.register_commits)
            self.cycle += 1
            self._dirty = True

    def step_domain(self, clock: str) -> None:
        """Advance a single clock domain by one edge (Section 6.2).

        Multi-clock designs are simulated by partitioning register commits
        per clock domain; combinational logic settles before every edge,
        which is the per-cycle synchronisation step.
        """
        commits = self._commits_by_clock.get(clock)
        if commits is None:
            raise KeyError(
                f"unknown clock domain {clock!r}; domains: "
                f"{sorted(self._commits_by_clock)}"
            )
        self._settle()
        self._commit(commits)
        self.cycle += 1
        self._dirty = True

    @property
    def clock_domains(self) -> List[str]:
        return sorted(self._commits_by_clock)

    def run(self, cycles: int) -> None:
        """Alias for :meth:`step`, for testbench readability."""
        self.step(cycles)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> SimSnapshot:
        """Checkpoint the value array + cycle, cheaply (one list copy).

        Lets testbenches and the batch engine fork simulation state --
        e.g. settle a common preamble once, then replay divergent suffixes
        from the checkpoint via :meth:`restore`.
        """
        self._settle()
        return SimSnapshot(list(self.values), self.cycle)

    def restore(self, snapshot: SimSnapshot) -> None:
        """Return to a :meth:`snapshot` checkpoint (same design shape)."""
        if len(snapshot.values) != self.bundle.num_slots:
            raise ValueError(
                f"snapshot has {len(snapshot.values)} slots, design "
                f"{self.bundle.design_name!r} has {self.bundle.num_slots}"
            )
        self.values = list(snapshot.values)
        self.cycle = snapshot.cycle
        self._dirty = True
        self.kernel.invalidate()

    # ------------------------------------------------------------------
    def _settle(self) -> None:
        if not self._dirty:
            return
        self.kernel.eval_comb(self.values)
        self._dirty = False

    def _commit(self, commits: Iterable) -> None:
        values = self.values
        staged = [(state, values[next_slot]) for state, next_slot in commits]
        for state, value in staged:
            values[state] = value

    # ------------------------------------------------------------------
    @property
    def activity_stats(self):
        """The kernel's :class:`~repro.kernels.activity.ActivityStats`,
        or ``None`` for a plain (non-activity) kernel -- the uniform
        stats surface shared with the batch/shard/serve engines."""
        return getattr(self.kernel, "stats", None)

    @property
    def signals(self) -> List[str]:
        return sorted(self.bundle.signal_slots)

    @property
    def signal_widths(self) -> Dict[str, int]:
        """``{signal: width}`` of every observable signal (waveforms)."""
        return {
            name: self.bundle.slot_width[slot]
            for name, slot in self.bundle.signal_slots.items()
        }

    def __repr__(self) -> str:
        return (
            f"Simulator({self.bundle.design_name!r}, kernel={self.kernel.name}, "
            f"cycle={self.cycle})"
        )
