"""Machine performance models: caches, sweep analytics, estimator, compile.

Public API::

    from repro.perf import estimate, get_machine, compile_cost
"""

from .cache import CacheHierarchy, SetAssociativeCache, StridePrefetcher
from .compile_model import CompileCost, compile_cost, source_compile_cost
from .estimator import PerfResult, estimate
from .machines import (
    ALL_MACHINES,
    AMD_RYZEN,
    AWS_GRAVITON4,
    CacheLevelSpec,
    INTEL_CORE,
    INTEL_XEON,
    MachineSpec,
    get_machine,
    with_llc_capacity,
)
from .sweep import (
    cyclic_sweep_misses,
    random_access_hit_rate,
    random_miss_profile,
    sweep_miss_profile,
)

__all__ = [
    "ALL_MACHINES",
    "AMD_RYZEN",
    "AWS_GRAVITON4",
    "CacheHierarchy",
    "CacheLevelSpec",
    "CompileCost",
    "INTEL_CORE",
    "INTEL_XEON",
    "MachineSpec",
    "PerfResult",
    "SetAssociativeCache",
    "StridePrefetcher",
    "compile_cost",
    "cyclic_sweep_misses",
    "estimate",
    "get_machine",
    "random_access_hit_rate",
    "random_miss_profile",
    "source_compile_cost",
    "sweep_miss_profile",
    "with_llc_capacity",
]
