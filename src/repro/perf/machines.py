"""Host machine models (paper Table 2).

Each :class:`MachineSpec` carries the cache hierarchy of one of the paper's
four hosts plus microarchitectural parameters that drive the performance
model: issue width, per-level latencies, branch-misprediction penalty, the
*fetch serialisation factor* (how much of an instruction-fetch miss's
latency the frontend fails to hide -- the paper attributes the Xeon/Core
divergence to fetch latency, Section 7.2), and a branch-predictor quality
factor (the paper observes Verilator's misprediction rate collapsing from
22% on Xeon to 0.22% on Graviton 4, Section 7.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class CacheLevelSpec:
    """One cache level: capacity, associativity, line size, hit latency."""

    name: str
    capacity: int
    associativity: int
    line_size: int = 64
    latency: int = 4  # cycles

    @property
    def num_lines(self) -> int:
        return self.capacity // self.line_size

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.associativity)


@dataclass(frozen=True)
class MachineSpec:
    """A host machine for the performance model."""

    name: str
    freq_ghz: float
    issue_width: int
    l1i: CacheLevelSpec
    l1d: CacheLevelSpec
    l2: CacheLevelSpec
    llc: CacheLevelSpec
    mem_latency: int = 220
    branch_penalty: int = 16
    #: Fraction of fetch-miss latency the frontend cannot hide.
    fetch_serialization: float = 0.30
    #: Fraction of data-miss latency not hidden by MLP/OoO.
    data_serialization: float = 0.35
    #: Scales baseline branch-misprediction rates (1.0 = x86-typical).
    predictor_quality: float = 1.0
    #: Relative single-thread compile throughput (1.0 = Xeon Gold 6248).
    compile_speed: float = 1.0

    def icache_path(self) -> Tuple[CacheLevelSpec, ...]:
        return (self.l1i, self.l2, self.llc)

    def dcache_path(self) -> Tuple[CacheLevelSpec, ...]:
        return (self.l1d, self.l2, self.llc)

    def miss_latency_after(self, level_index: int) -> int:
        """Latency paid when missing level ``level_index`` (0=L1)."""
        path = (self.l2.latency, self.llc.latency, self.mem_latency)
        return path[min(level_index, len(path) - 1)]


# ----------------------------------------------------------------------
# The paper's four hosts (Table 2).  Latencies follow public measurements;
# the Xeon's last-level-cache latency is roughly twice the Core's, which
# the paper cites as the source of its frontend-stall divergence.
# ----------------------------------------------------------------------
INTEL_CORE = MachineSpec(
    name="Intel Core i9-13900K",
    freq_ghz=5.5,
    issue_width=6,
    l1i=CacheLevelSpec("L1I", 32 * KIB, 8, latency=4),
    l1d=CacheLevelSpec("L1D", 48 * KIB, 12, latency=5),
    l2=CacheLevelSpec("L2", 2 * MIB, 16, latency=15),
    llc=CacheLevelSpec("LLC", 36 * MIB, 12, latency=33),
    mem_latency=190,
    branch_penalty=17,
    fetch_serialization=0.013,
    data_serialization=0.08,
    predictor_quality=1.0,
    compile_speed=1.8,
)

INTEL_XEON = MachineSpec(
    name="Intel Xeon Gold 5512U",
    freq_ghz=2.6,
    issue_width=6,
    l1i=CacheLevelSpec("L1I", 32 * KIB, 8, latency=4),
    l1d=CacheLevelSpec("L1D", 48 * KIB, 12, latency=5),
    l2=CacheLevelSpec("L2", 2 * MIB, 16, latency=16),
    llc=CacheLevelSpec("LLC", int(52.5 * MIB), 15, latency=70),
    mem_latency=260,
    branch_penalty=17,
    fetch_serialization=0.15,
    data_serialization=0.08,
    predictor_quality=1.0,
    compile_speed=1.0,
)

AMD_RYZEN = MachineSpec(
    name="AMD Ryzen 7 4800HS",
    freq_ghz=2.9,
    issue_width=5,
    l1i=CacheLevelSpec("L1I", 32 * KIB, 8, latency=4),
    l1d=CacheLevelSpec("L1D", 32 * KIB, 8, latency=4),
    l2=CacheLevelSpec("L2", 512 * KIB, 8, latency=12),
    llc=CacheLevelSpec("LLC", 8 * MIB, 16, latency=38),
    mem_latency=240,
    branch_penalty=16,
    fetch_serialization=0.20,
    data_serialization=0.10,
    predictor_quality=0.9,
    compile_speed=0.9,
)

AWS_GRAVITON4 = MachineSpec(
    name="AWS Graviton 4",
    freq_ghz=2.8,
    issue_width=6,
    l1i=CacheLevelSpec("L1I", 64 * KIB, 8, latency=4),
    l1d=CacheLevelSpec("L1D", 64 * KIB, 8, latency=4),
    l2=CacheLevelSpec("L2", 2 * MIB, 16, latency=13),
    llc=CacheLevelSpec("LLC", 36 * MIB, 12, latency=55),
    mem_latency=230,
    branch_penalty=14,
    fetch_serialization=0.16,
    data_serialization=0.12,
    #: The paper measures near-zero Verilator misprediction on Graviton 4.
    predictor_quality=0.01,
    compile_speed=1.1,
)

ALL_MACHINES: Tuple[MachineSpec, ...] = (
    INTEL_CORE, INTEL_XEON, AMD_RYZEN, AWS_GRAVITON4,
)

MACHINES_BY_NAME: Dict[str, MachineSpec] = {
    "intel-core": INTEL_CORE,
    "intel-xeon": INTEL_XEON,
    "amd": AMD_RYZEN,
    "aws": AWS_GRAVITON4,
}


def get_machine(name: str) -> MachineSpec:
    key = name.strip().lower()
    if key in MACHINES_BY_NAME:
        return MACHINES_BY_NAME[key]
    for machine in ALL_MACHINES:
        if machine.name.lower() == key:
            return machine
    raise KeyError(
        f"unknown machine {name!r}; choose from {sorted(MACHINES_BY_NAME)}"
    )


def with_llc_capacity(machine: MachineSpec, capacity: int) -> MachineSpec:
    """A copy of ``machine`` with the LLC clamped (Intel CAT, Figure 21)."""
    from dataclasses import replace

    clamped = CacheLevelSpec(
        "LLC", capacity, machine.llc.associativity,
        machine.llc.line_size, machine.llc.latency,
    )
    return replace(machine, llc=clamped)
