"""The end-to-end performance estimator.

Combines a :class:`~repro.kernels.profile.KernelProfile` (what one simulated
cycle does) with a :class:`~repro.perf.machines.MachineSpec` (what the host
can absorb) to produce the quantities the paper reports: simulation time,
IPC, dynamic instructions, cache miss counts, MPKI, and a top-down
breakdown (frontend-bound / bad-speculation / backend-bound / retiring,
after Yasin's method).

Mechanics, per simulated cycle:

* *retiring base*: ``dyn_instr / issue_width``;
* *frontend*: instruction-side misses from the analytic sweep model
  (straight-line kernels stream their whole code footprint each cycle;
  rolled kernels re-run a small resident loop), scaled by the machine's
  fetch-serialisation factor -- the Xeon/Core divergence of Section 7.2;
* *bad speculation*: branch mispredicts x penalty, with the machine's
  predictor-quality factor (Graviton-4's near-zero Verilator misprediction,
  Section 7.5);
* *backend*: irregular ``LI``/value-array misses (the paper's dominant
  D-cache miss source) plus a small residual for the prefetched
  sequential OIM streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernels.profile import KernelProfile
from .machines import MachineSpec
from .sweep import random_miss_profile, sweep_miss_profile

#: Residual L1I miss rate for loop-resident (rolled) kernels.
ROLLED_ICACHE_RESIDUAL = 0.0025
#: Fraction of sequential (prefetched) OIM line fetches that still stall.
OIM_PREFETCH_MISS = 0.08
#: Fraction of a shared level's capacity that streaming data can crowd out.
MAX_RESIDENT_FRACTION = 0.5
#: Sequential OIM streams barely stay resident (non-temporal behaviour).
OIM_RESIDENT_FRACTION = 0.15
#: Floor on effective branch-misprediction rates.
MISPREDICT_FLOOR = 0.0005


@dataclass
class PerfResult:
    """Modelled performance of one engine on one design and machine."""

    engine: str
    design: str
    machine: str
    sim_cycles: int
    dyn_instr: float
    host_cycles: float
    sim_time_s: float
    ipc: float
    l1i_misses: float
    l1d_loads: float
    l1d_misses: float
    l1i_mpki: float
    branch_miss_rate: float
    topdown: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, other: "PerfResult") -> float:
        return other.sim_time_s / self.sim_time_s


def _effective_resident(resident_bytes: float, capacity_bytes: float) -> float:
    return min(resident_bytes, MAX_RESIDENT_FRACTION * capacity_bytes)


def estimate(
    profile: KernelProfile,
    machine: MachineSpec,
    sim_cycles: int,
) -> PerfResult:
    """Model ``sim_cycles`` simulated cycles of ``profile`` on ``machine``."""
    # ------------------------------------------------------------------
    # Retiring base (issue width capped by the kernel's sustainable ILP)
    # ------------------------------------------------------------------
    effective_width = min(machine.issue_width, profile.ilp)
    base_cycles = profile.dyn_instr / effective_width

    # ------------------------------------------------------------------
    # Instruction side
    # ------------------------------------------------------------------
    data_resident = _effective_resident(
        profile.oim_data_bytes + profile.value_bytes, machine.llc.capacity
    )
    if profile.code_streamed:
        i_misses = sweep_miss_profile(
            profile.hot_code_bytes, machine, side="inst",
            resident_bytes=data_resident,
        )
    else:
        resident_lines = profile.hot_code_bytes / machine.l1i.line_size
        residual = resident_lines * ROLLED_ICACHE_RESIDUAL
        i_misses = [residual, 0.0, 0.0]
        if profile.hot_code_bytes > machine.l1i.capacity:
            i_misses = sweep_miss_profile(
                profile.hot_code_bytes, machine, side="inst",
                resident_bytes=data_resident,
            )
    # Code prefetching hides L2/LLC fetch latency well but only partially
    # covers full memory-latency misses.
    hidden = getattr(profile, "fetch_prefetch_hidden", 0.0)
    hidden_by_level = (hidden, hidden, hidden * 0.4)
    fetch_stall = sum(
        misses
        * machine.miss_latency_after(level)
        * (1.0 - hidden_by_level[min(level, 2)])
        for level, misses in enumerate(i_misses)
    ) * machine.fetch_serialization

    # ------------------------------------------------------------------
    # Data side: irregular value-array accesses dominate misses; the
    # sequential OIM stream is prefetched and contributes a residual.
    # ------------------------------------------------------------------
    code_resident = (
        _effective_resident(profile.hot_code_bytes, machine.llc.capacity)
        if profile.code_streamed
        else 0.0
    )
    oim_resident = min(
        profile.oim_data_bytes, OIM_RESIDENT_FRACTION * machine.l2.capacity
    )
    v_misses = random_miss_profile(
        profile.value_bytes, profile.v_reads, machine,
        resident_bytes=code_resident + oim_resident,
    )
    oim_lines = profile.oim_data_bytes / machine.l1d.line_size
    oim_residual_misses = oim_lines * OIM_PREFETCH_MISS
    data_stall = (
        sum(
            misses * machine.miss_latency_after(level)
            for level, misses in enumerate(v_misses)
        )
        + oim_residual_misses * machine.l2.latency
    ) * machine.data_serialization

    # ------------------------------------------------------------------
    # Branches
    # ------------------------------------------------------------------
    miss_rate = max(
        profile.mispredict_rate * machine.predictor_quality, MISPREDICT_FLOOR
    )
    mispredicts = profile.branches * miss_rate
    branch_stall = mispredicts * machine.branch_penalty

    # ------------------------------------------------------------------
    # Assemble
    # ------------------------------------------------------------------
    cycles_per_sim_cycle = base_cycles + fetch_stall + data_stall + branch_stall
    host_cycles = cycles_per_sim_cycle * sim_cycles
    sim_time = host_cycles / (machine.freq_ghz * 1e9)
    dyn_instr = profile.dyn_instr * sim_cycles
    ipc = dyn_instr / host_cycles if host_cycles else 0.0

    l1i_misses = i_misses[0] * sim_cycles
    l1d_misses = (v_misses[0] + oim_residual_misses) * sim_cycles
    l1d_loads = profile.loads * sim_cycles
    l1i_mpki = 1000.0 * l1i_misses / dyn_instr if dyn_instr else 0.0

    topdown = {
        "retiring": base_cycles / cycles_per_sim_cycle,
        "frontend": fetch_stall / cycles_per_sim_cycle,
        "bad_speculation": branch_stall / cycles_per_sim_cycle,
        "backend": data_stall / cycles_per_sim_cycle,
    }

    return PerfResult(
        engine=profile.kernel,
        design=profile.design,
        machine=machine.name,
        sim_cycles=sim_cycles,
        dyn_instr=dyn_instr,
        host_cycles=host_cycles,
        sim_time_s=sim_time,
        ipc=ipc,
        l1i_misses=l1i_misses,
        l1d_loads=l1d_loads,
        l1d_misses=l1d_misses,
        l1i_mpki=l1i_mpki,
        branch_miss_rate=miss_rate,
        topdown=topdown,
    )
