"""A set-associative LRU cache simulator with a stride prefetcher.

This is the trace-driven half of the performance model.  The analytic sweep
model in :mod:`repro.perf.sweep` is what the experiments use at scale; this
simulator is its ground truth -- the property tests replay sweep- and
random-access traces through both and check they agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .machines import CacheLevelSpec, MachineSpec


class SetAssociativeCache:
    """One cache level: true-LRU, physically indexed by line address."""

    def __init__(self, spec: CacheLevelSpec) -> None:
        self.spec = spec
        self.num_sets = spec.num_sets
        self.associativity = min(spec.associativity, max(1, spec.num_lines))
        # Per-set ordered dict of line -> None; insertion order is LRU order.
        self._sets: List[Dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Touch ``line``; returns True on hit."""
        index = line % self.num_sets
        ways = self._sets[index]
        if line in ways:
            del ways[line]
            ways[line] = None
            self.hits += 1
            return True
        self.misses += 1
        self.fill(line)
        return False

    def fill(self, line: int) -> None:
        """Install ``line``, evicting LRU if needed (no accounting)."""
        index = line % self.num_sets
        ways = self._sets[index]
        if line in ways:
            del ways[line]
        elif len(ways) >= self.associativity:
            oldest = next(iter(ways))
            del ways[oldest]
        ways[line] = None

    def contains(self, line: int) -> bool:
        return line in self._sets[line % self.num_sets]

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


@dataclass
class AccessResult:
    """Where an access hit: 0 = L1, 1 = L2, 2 = LLC, 3 = memory."""

    level: int

    @property
    def hit_l1(self) -> bool:
        return self.level == 0


class StridePrefetcher:
    """Next-line stride prefetcher with per-stream state.

    On two consecutive line accesses with the same stride within a stream,
    prefetches ``degree`` lines ahead into the target cache.
    """

    def __init__(self, degree: int = 4) -> None:
        self.degree = degree
        self._last: Dict[int, Tuple[int, int]] = {}
        self.issued = 0

    def observe(self, stream: int, line: int) -> List[int]:
        last = self._last.get(stream)
        prefetches: List[int] = []
        if last is not None:
            last_line, last_stride = last
            stride = line - last_line
            if stride != 0 and stride == last_stride:
                prefetches = [line + stride * k for k in range(1, self.degree + 1)]
                self.issued += len(prefetches)
            self._last[stream] = (line, stride)
        else:
            self._last[stream] = (line, 0)
        return prefetches


class CacheHierarchy:
    """Inclusive L1/L2/LLC hierarchy fed line-granularity accesses."""

    def __init__(
        self,
        machine: MachineSpec,
        side: str = "data",
        prefetch_degree: int = 4,
    ) -> None:
        path = machine.dcache_path() if side == "data" else machine.icache_path()
        self.levels = [SetAssociativeCache(spec) for spec in path]
        self.machine = machine
        self.prefetcher = StridePrefetcher(prefetch_degree)
        #: Per-level demand misses (prefetch fills excluded).
        self.demand_misses = [0] * len(self.levels)
        self.accesses = 0

    def access(self, address: int, stream: Optional[int] = None) -> AccessResult:
        """Access a byte address; returns the hit level."""
        line = address // self.levels[0].spec.line_size
        result = self._access_line(line, demand=True)
        if stream is not None:
            for prefetch_line in self.prefetcher.observe(stream, line):
                self._access_line(prefetch_line, demand=False)
        return result

    def _access_line(self, line: int, demand: bool) -> AccessResult:
        # access() fills each missed level on the way down, so a hit at
        # level k leaves the line installed in every level above it.
        hit_level = len(self.levels)
        for index, level in enumerate(self.levels):
            if level.access(line):
                hit_level = index
                break
            if demand:
                self.demand_misses[index] += 1
        if demand:
            self.accesses += 1
        return AccessResult(hit_level)

    def miss_counts(self) -> Tuple[int, ...]:
        return tuple(self.demand_misses)

    def stall_cycles(self) -> float:
        """Aggregate serialised miss latency for all demand accesses."""
        total = 0.0
        for index, misses in enumerate(self.demand_misses):
            total += misses * self.machine.miss_latency_after(index)
        return total
