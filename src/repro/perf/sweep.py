"""Analytic steady-state cache models (validated against the simulator).

Full-cycle RTL simulation has a remarkably regular memory profile: every
simulated cycle sweeps the same structures.

* :func:`cyclic_sweep_misses` -- a repeating sequential sweep over a
  footprint of F lines through an LRU level of C lines misses *everywhere*
  once F exceeds C (cyclic access is LRU's adversarial pattern) and never
  after warmup when it fits.  This single fact produces the paper's L1I
  cliffs for the SU/TI kernels (Table 6) and the LLC cliff of Figure 21.
* :func:`random_access_hit_rate` -- steady-state hit rate of uniform
  random accesses over a working set (the irregular ``LI`` accesses that
  dominate D-cache misses in the paper's analysis, Section 7.2).

The property tests replay both patterns through
:class:`repro.perf.cache.CacheHierarchy` and check these formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .machines import CacheLevelSpec, MachineSpec


def cyclic_sweep_misses(footprint_lines: int, capacity_lines: int,
                        slack: float = 0.98) -> float:
    """Misses per sweep of ``footprint_lines`` through a cache level.

    A true-LRU cache thrashes completely on a cyclic sweep the moment the
    footprint exceeds capacity.  Real replacement policies (pseudo-LRU,
    RRIP) retain part of the working set, so the modelled miss fraction
    ramps linearly from 0 at capacity to 1 at twice capacity -- the
    behaviour the trace-driven simulator bounds from above.

    ``slack`` reserves a little capacity for conflict misses and other
    residents.  Returns misses *per full sweep* in steady state.
    """
    if footprint_lines <= 0:
        return 0.0
    effective = capacity_lines * slack
    if footprint_lines <= effective:
        return 0.0
    fraction = min(1.0, (footprint_lines - effective) / max(effective, 1.0))
    return float(footprint_lines) * fraction


def sweep_miss_profile(
    footprint_bytes: int,
    machine: MachineSpec,
    side: str = "inst",
    resident_bytes: int = 0,
) -> List[float]:
    """Per-level misses of one full sweep of ``footprint_bytes``.

    ``resident_bytes`` models competing data in the shared levels (L2/LLC):
    the sweep only enjoys the capacity left over.
    """
    path = machine.icache_path() if side == "inst" else machine.dcache_path()
    line = path[0].line_size
    footprint_lines = (footprint_bytes + line - 1) // line
    resident_lines = resident_bytes // line
    misses: List[float] = []
    for index, level in enumerate(path):
        capacity = level.num_lines
        if index > 0:
            # Competing residents can crowd out at most half a level.
            capacity = max(1, capacity - min(resident_lines, capacity // 2))
        misses.append(cyclic_sweep_misses(footprint_lines, capacity))
    # A level only sees the misses of the level above.
    for index in range(len(misses) - 1, 0, -1):
        misses[index] = min(misses[index], misses[index - 1])
    return misses


def random_access_hit_rate(working_set_lines: int, capacity_lines: int,
                           hot_fraction: float = 0.05,
                           hot_weight: float = 0.6) -> float:
    """Steady-state hit rate for skewed-random accesses over a working set.

    A ``hot_fraction`` of the lines receives ``hot_weight`` of the
    accesses (real LI accesses are skewed: some signals feed many
    operations).  With LRU and random access, the resident subset is
    approximately the hottest ``capacity`` lines.
    """
    if working_set_lines <= 0:
        return 1.0
    if capacity_lines >= working_set_lines:
        return 1.0
    hot_lines = max(1, int(working_set_lines * hot_fraction))
    if capacity_lines >= hot_lines:
        cold_lines = working_set_lines - hot_lines
        cold_capacity = capacity_lines - hot_lines
        cold_hit = cold_capacity / cold_lines if cold_lines else 1.0
        return hot_weight + (1.0 - hot_weight) * cold_hit
    return hot_weight * (capacity_lines / hot_lines)


def random_miss_profile(
    working_set_bytes: int,
    accesses: float,
    machine: MachineSpec,
    resident_bytes: int = 0,
) -> List[float]:
    """Per-level misses for ``accesses`` skewed-random data accesses."""
    path = machine.dcache_path()
    line = path[0].line_size
    working_lines = (working_set_bytes + line - 1) // line
    resident_lines = resident_bytes // line
    remaining = accesses
    misses: List[float] = []
    for index, level in enumerate(path):
        capacity = level.num_lines
        if index > 0:
            # Streaming code/metadata can crowd out at most half a level.
            capacity = max(1, capacity - min(resident_lines, capacity // 2))
        hit_rate = random_access_hit_rate(working_lines, capacity)
        missed = remaining * (1.0 - hit_rate)
        misses.append(missed)
        remaining = missed
    return misses
