"""Compile-cost model: clang time and peak memory from generated source.

The paper's compile-cost story (Figures 8/15, Table 7) is a function of
generated-code volume and shape:

* many small functions (Verilator-style, our rolled kernels) compile in
  time linear in total statements;
* one giant function (ESSENT-style, our SU/TI kernels) costs clang
  super-linearly at ``-O3`` -- the calibration below reproduces Table 7's
  ESSENT scaling (121 s at r1 to ~13,700 s at r24; 2.8 GB to 234 GB).

Constants are calibrated to Table 7 (Intel Xeon Gold 6248, clang -O3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .machines import MachineSpec

#: Fixed front-end cost of a compile invocation (headers, codegen setup).
BASE_SECONDS = {"O3": 4.1, "O2": 3.4, "O0": 1.1}
#: Linear per-statement cost (many small functions).
LINEAR_SECONDS_PER_STMT = {"O3": 1.25e-3, "O2": 9e-4, "O0": 1.6e-4}
#: Super-linear single-function cost: ``coeff * max_fn_stmts ** 1.5``.
SUPERLINEAR_COEFF = {"O3": 8.2e-6, "O2": 4.0e-6, "O0": 0.0}
#: Functions below this size pay only the linear cost.
SUPERLINEAR_THRESHOLD = 20_000

#: Many-small-function sources (Verilator splits output across .cpp files)
#: compile in parallel under make -j: cost ~ stmts^0.7 (calibrated to
#: Table 7a's Verilator row: 92 s at r1, 724 s at r24).
PARALLEL_COEFF = {"O3": 0.032, "O2": 0.024, "O0": 0.006}
PARALLEL_EXPONENT = 0.7

BASE_MEMORY_BYTES = 200_000_000  # ~0.2 GB resident for a trivial compile
LINEAR_MEMORY_PER_STMT = {"O3": 900.0, "O2": 700.0, "O0": 280.0}
#: Single-function blowup: ``coeff * max_fn_stmts ** 1.39`` (Table 7b).
SUPERLINEAR_MEMORY_COEFF = {"O3": 651.0, "O2": 420.0, "O0": 0.0}


@dataclass
class CompileCost:
    """Modelled clang invocation cost."""

    seconds: float
    peak_memory_bytes: float

    @property
    def peak_memory_gb(self) -> float:
        return self.peak_memory_bytes / 1e9

    @property
    def peak_memory_mb(self) -> float:
        return self.peak_memory_bytes / 1e6


def compile_cost(
    total_statements: float,
    max_function_statements: float,
    opt_level: str = "O3",
    machine: Optional[MachineSpec] = None,
    parallel: bool = False,
) -> CompileCost:
    """Model one compile invocation.

    ``total_statements`` drives the linear term; ``max_function_statements``
    drives the super-linear term once a single function crosses the
    threshold where clang's O3 passes stop scaling linearly.  ``parallel``
    selects the many-translation-units path (Verilator + make -j), whose
    wall-clock grows sublinearly.
    """
    if opt_level not in BASE_SECONDS:
        raise ValueError(f"unknown optimisation level {opt_level!r}")
    seconds = BASE_SECONDS[opt_level]
    if parallel:
        seconds += PARALLEL_COEFF[opt_level] * total_statements ** PARALLEL_EXPONENT
    else:
        seconds += LINEAR_SECONDS_PER_STMT[opt_level] * total_statements
    memory = BASE_MEMORY_BYTES + LINEAR_MEMORY_PER_STMT[opt_level] * (
        max_function_statements if parallel else total_statements
    )
    if not parallel and max_function_statements > SUPERLINEAR_THRESHOLD:
        seconds += SUPERLINEAR_COEFF[opt_level] * max_function_statements ** 1.5
        memory += (
            SUPERLINEAR_MEMORY_COEFF[opt_level] * max_function_statements ** 1.39
        )
    if machine is not None:
        seconds /= machine.compile_speed
    return CompileCost(seconds=seconds, peak_memory_bytes=memory)


def source_compile_cost(
    source,
    opt_level: str = "O3",
    machine: Optional[MachineSpec] = None,
    extrapolation: float = 1.0,
) -> CompileCost:
    """Compile cost of a generated :class:`CppSource`-like object.

    ``extrapolation`` scales the statement counts to paper-size designs
    (per-function structure is preserved: the largest function grows by
    the same factor).
    """
    return compile_cost(
        source.total_statements * extrapolation,
        source.max_function_statements * extrapolation,
        opt_level=opt_level,
        machine=machine,
        parallel=getattr(source, "parallel_compile", False),
    )
