"""A Verilator-like baseline backend.

Verilator translates the design into scheduled, *branchy* C++: mux
operations become ``if``/``else``, the design is split across many
moderate-sized functions, and signal values live in a model struct
(Section 3).  This module reimplements that code shape:

* :class:`VerilatorBackend` executes generated branchy Python for
  functional simulation (bit-exact; validated against the reference);
* :func:`verilator_cpp` generates the equivalent C++ and its statement
  statistics for the compile-cost model;
* :func:`verilator_profile` characterises the per-cycle behaviour for the
  performance model -- notably the high branch-misprediction rate the
  paper measures (22% on Intel Xeon for 4-core RocketChip, Section 7.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..firrtl.primops import mask
from ..kernels.codegen_cpp import CppSource
from ..kernels.expr import python_expr, cpp_expr
from ..kernels.profile import KernelProfile
from ..oim.builder import OimBundle, OpRecord
from ..sim.simulator import DesignLike, compile_design

#: Dynamic instructions per effectual operation: a mux-free op compiles as
#: tightly as ESSENT's straight-line code; every mux adds compare+branch
#: overhead.  -O0 multiplies by 4.42 (Section 7.4).
VERILATOR_INSTR_BASE = {"O3": 3.2, "O2": 3.6, "O0": 14.1}
VERILATOR_INSTR_PER_MUX = {"O3": 58.0, "O2": 64.0, "O0": 256.0}
#: Binary bytes per operation (19 MB at small-8's 281K paper ops).
VERILATOR_BYTES_PER_OP = {"O3": 68.0, "O2": 66.0, "O0": 150.0}
#: Branch misprediction rate on an x86-class predictor (Section 7.3).
VERILATOR_MISPREDICT = 0.22
#: Base branches per op plus the mux-driven component: Verilator lowers
#: every mux to a conditional branch, so branchy-ness tracks the design's
#: mux fraction (SHA3's xor datapath barely branches; cores branch a lot).
VERILATOR_BRANCHES_BASE = 0.01
VERILATOR_BRANCHES_PER_MUX = 1.2
#: Fused muxchainK ops stand for K Verilator muxes (Verilator does not fuse).
def _mux_weight(name: str) -> int:
    if name == "mux":
        return 1
    if name.startswith("muxchain"):
        return int(name[len("muxchain"):])
    return 0
#: Statements of generated C++ per operation (plus harness overhead).
VERILATOR_STMTS_PER_OP = 1.35
#: Verilator splits output across functions of roughly this many statements.
VERILATOR_FUNCTION_SIZE = 3_000

_CHUNK = 3_000


def _branchy_statement(bundle: OimBundle, record: OpRecord,
                       const_values: Dict[int, int], lang: str) -> List[str]:
    """Render one op in Verilator's branchy style (muxes become if/else)."""
    entry = bundle.op_table.entry(record.n)
    slot_expr = (lambda r: f"V[{r}]")
    args = [
        str(const_values[r]) if r in const_values else slot_expr(r)
        for r in record.operands
    ]
    widths = [bundle.slot_width[r] for r in record.operands]
    target = f"V[{record.s}]"
    render = python_expr if lang == "py" else cpp_expr
    indent = "    " if lang == "py" else "  "

    if entry.name == "mux":
        if lang == "py":
            return [
                f"{indent}if {args[0]}:",
                f"{indent}    {target} = {args[1]}",
                f"{indent}else:",
                f"{indent}    {target} = {args[2]}",
            ]
        return [
            f"{indent}if ({args[0]}) {target} = {args[1]};",
            f"{indent}else {target} = {args[2]};",
        ]
    if entry.name.startswith("muxchain"):
        lines: List[str] = []
        keyword_if = "if" if lang == "py" else "if ("
        close = ":" if lang == "py" else ")"
        body = (lambda value: f"{target} = {value}" + ("" if lang == "py" else ";"))
        for index, position in enumerate(range(0, len(args) - 1, 2)):
            head = "if" if index == 0 else "elif" if lang == "py" else "else if"
            if lang == "py":
                lines.append(f"{indent}{head} {args[position]}:")
                lines.append(f"{indent}    {body(args[position + 1])}")
            else:
                lines.append(f"{indent}{head} ({args[position]}) {body(args[position + 1])}")
        if lang == "py":
            lines.append(f"{indent}else:")
            lines.append(f"{indent}    {body(args[-1])}")
        else:
            lines.append(f"{indent}else {body(args[-1])}")
        return lines
    expression = render(entry.name, args, widths, bundle.slot_width[record.s])
    if lang == "py":
        return [f"{indent}{target} = {expression}"]
    return [f"{indent}{target} = {expression};"]


class VerilatorBackend:
    """Functional Verilator-style simulator (branchy generated Python)."""

    name = "Verilator"

    def __init__(self, design: DesignLike, opt_level: str = "O3") -> None:
        self.bundle = compile_design(design)
        self.opt_level = opt_level
        self.values: List[int] = self.bundle.initial_values()
        self.cycle = 0
        self._dirty = True
        self._functions = self._generate()

    def _generate(self):
        bundle = self.bundle
        const_values = dict(bundle.const_slots)
        records = [record for layer in bundle.layers for record in layer]
        functions = []
        for index in range(0, max(len(records), 1), _CHUNK):
            chunk = records[index:index + _CHUNK]
            name = f"_eval_{index // _CHUNK}"
            lines = [f"def {name}(V):"]
            for record in chunk:
                lines.extend(_branchy_statement(bundle, record, const_values, "py"))
            if len(lines) == 1:
                lines.append("    pass")
            namespace: Dict[str, object] = {}
            exec(compile("\n".join(lines), f"<verilator:{name}>", "exec"), namespace)
            functions.append(namespace[name])
        return functions

    # -- simulator interface -------------------------------------------
    def poke(self, name: str, value: int) -> None:
        slot = self.bundle.input_slots[name]
        self.values[slot] = mask(value, self.bundle.slot_width[slot])
        self._dirty = True

    def peek(self, name: str) -> int:
        slot = self.bundle.signal_slots[name]
        self._settle()
        return self.values[slot]

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self._settle()
            staged = [
                (state, self.values[next_slot])
                for state, next_slot in self.bundle.register_commits
            ]
            for state, value in staged:
                self.values[state] = value
            self.cycle += 1
            self._dirty = True

    def reset(self) -> None:
        inputs = {
            name: self.values[slot]
            for name, slot in self.bundle.input_slots.items()
        }
        self.values = self.bundle.initial_values()
        for name, value in inputs.items():
            self.values[self.bundle.input_slots[name]] = value
        self.cycle = 0
        self._dirty = True

    def _settle(self) -> None:
        if not self._dirty:
            return
        for function in self._functions:
            function(self.values)
        self._dirty = False


def verilator_cpp(bundle: OimBundle) -> CppSource:
    """Generate Verilator-style C++ (branchy, many medium functions)."""
    const_values = dict(bundle.const_slots)
    records = [record for layer in bundle.layers for record in layer]
    functions: List[Tuple[str, int]] = []
    parts: List[str] = ["#include \"verilated_model.h\"\n"]
    for index in range(0, max(len(records), 1), _CHUNK):
        chunk = records[index:index + _CHUNK]
        name = f"eval_seq_{index // _CHUNK}"
        lines = [f"void Vmodel::{name}() {{"]
        for record in chunk:
            lines.extend(_branchy_statement(bundle, record, const_values, "cpp"))
        lines.append("}")
        parts.append("\n".join(lines) + "\n")
        functions.append((name, max(len(lines) - 2, 1)))
    harness = 180  # scheduler, change detection, tracing hooks
    functions.append(("harness", harness))
    text = "".join(parts)
    return CppSource(
        kernel="Verilator",
        text=text,
        functions=functions,
        kernel_statements=sum(count for _, count in functions),
        oim_data_bytes=0,
        parallel_compile=True,
    )


def verilator_profile(
    bundle: OimBundle,
    opt_level: str = "O3",
    extrapolation: float = 1.0,
) -> KernelProfile:
    """Per-cycle performance characterisation of the Verilator backend."""
    ops = bundle.num_ops * extrapolation
    operands = (
        sum(len(r.operands) for layer in bundle.layers for r in layer)
        * extrapolation
    )
    commits = len(bundle.register_commits) * extrapolation
    value_bytes = sum(
        1 if w <= 8 else 2 if w <= 16 else 4 if w <= 32 else 8
        for w in bundle.slot_width
    ) * extrapolation

    mux_ops = sum(
        _mux_weight(bundle.op_table.name_of(record.n))
        for layer in bundle.layers
        for record in layer
    ) * extrapolation
    mux_fraction = mux_ops / ops if ops else 0.0
    dyn_instr = (
        ops * VERILATOR_INSTR_BASE[opt_level]
        + mux_ops * VERILATOR_INSTR_PER_MUX[opt_level]
        + commits * 4
    )
    code_bytes = 400_000 + ops * VERILATOR_BYTES_PER_OP[opt_level]
    # Branch-free regions schedule like straight-line code; mux-dense
    # regions serialise on compare/branch chains.
    ilp = 6.0 - 2.0 * min(1.0, 5.0 * mux_fraction)
    if opt_level == "O0":
        ilp *= 0.5
    return KernelProfile(
        kernel="Verilator",
        design=bundle.design_name,
        ops=ops,
        operands=operands,
        layers=bundle.num_layers,
        num_slots=bundle.num_slots * extrapolation,
        dyn_instr=dyn_instr,
        code_bytes=code_bytes,
        hot_code_bytes=code_bytes * 0.50,
        oim_data_bytes=0.0,
        value_bytes=value_bytes,
        v_reads=0.3 * (operands + ops) + commits * 2,
        loads=dyn_instr * 0.35,
        branches=ops * VERILATOR_BRANCHES_BASE
        + mux_ops * VERILATOR_BRANCHES_PER_MUX + commits,
        mispredict_rate=VERILATOR_MISPREDICT,
        code_streamed=True,
        ilp=ilp,
        fetch_prefetch_hidden=0.75,
        source=None,
    )
