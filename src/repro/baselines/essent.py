"""An ESSENT-like baseline backend.

ESSENT completely unrolls the RTL dataflow graph into straight-line code in
a single translation unit (Section 3): near-zero branches, excellent
instruction scheduling under ``clang -O3``, but binary size proportional to
the design and *super-linear* compile cost (Table 7).  When optimisations
are disabled (-O0) its dynamic instruction count explodes by ~103x
(Section 7.4) because the approach leans entirely on the compiler.

This module mirrors that shape: straight-line generated Python for
functional simulation, single-giant-function C++ for the compile model,
and a branch-free streamed profile for the performance model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..firrtl.primops import mask
from ..kernels.codegen_cpp import CppSource
from ..kernels.config import get_kernel_config
from ..kernels.expr import cpp_expr
from ..kernels.profile import KernelProfile
from ..kernels.pykernels import SUKernel
from ..oim.builder import OimBundle
from ..sim.simulator import DesignLike, compile_design

#: Dynamic instructions per effectual operation.  -O0 is ~103x the -O3
#: count (Section 7.4); -O2 is the activity-oblivious variant of Figure 7.
ESSENT_INSTR_PER_OP = {"O3": 3.0, "O2": 3.6, "O0": 310.0}
#: Binary bytes per operation (11 MB at small-8's 281K paper ops).
ESSENT_BYTES_PER_OP = {"O3": 16.0, "O2": 14.0, "O0": 55.0}
ESSENT_BRANCHES_PER_OP = 0.02
ESSENT_MISPREDICT = 0.001
ESSENT_STMTS_PER_OP = 1.05


class EssentBackend:
    """Functional ESSENT-style simulator (straight-line generated Python)."""

    name = "ESSENT"

    def __init__(self, design: DesignLike, opt_level: str = "O3") -> None:
        self.bundle = compile_design(design)
        self.opt_level = opt_level
        # Straight-line array code is exactly the SU shape; reuse its
        # generator for the functional path.
        self._kernel = SUKernel(self.bundle, get_kernel_config("SU"))
        self.values: List[int] = self.bundle.initial_values()
        self.cycle = 0
        self._dirty = True

    def poke(self, name: str, value: int) -> None:
        slot = self.bundle.input_slots[name]
        self.values[slot] = mask(value, self.bundle.slot_width[slot])
        self._dirty = True

    def peek(self, name: str) -> int:
        slot = self.bundle.signal_slots[name]
        self._settle()
        return self.values[slot]

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self._settle()
            staged = [
                (state, self.values[next_slot])
                for state, next_slot in self.bundle.register_commits
            ]
            for state, value in staged:
                self.values[state] = value
            self.cycle += 1
            self._dirty = True

    def reset(self) -> None:
        inputs = {
            name: self.values[slot]
            for name, slot in self.bundle.input_slots.items()
        }
        self.values = self.bundle.initial_values()
        for name, value in inputs.items():
            self.values[self.bundle.input_slots[name]] = value
        self.cycle = 0
        self._dirty = True

    def _settle(self) -> None:
        if not self._dirty:
            return
        self._kernel.eval_comb(self.values)
        self._dirty = False


def essent_cpp(bundle: OimBundle) -> CppSource:
    """Generate ESSENT-style C++: one straight-line eval in a single TU."""
    const_values = dict(bundle.const_slots)
    lines: List[str] = ["#include \"essent_model.h\"", "void eval() {"]
    statements = 0
    for layer in bundle.layers:
        for record in layer:
            entry = bundle.op_table.entry(record.n)
            args = [
                f"{const_values[r]}ULL" if r in const_values else f"sig[{r}]"
                for r in record.operands
            ]
            widths = [bundle.slot_width[r] for r in record.operands]
            expression = cpp_expr(
                entry.name, args, widths, bundle.slot_width[record.s]
            )
            lines.append(f"  sig[{record.s}] = {expression};")
            statements += 1
    lines.append("}")
    text = "\n".join(lines) + "\n"
    return CppSource(
        kernel="ESSENT",
        text=text,
        functions=[("eval", statements), ("harness", 120)],
        kernel_statements=statements + 120,
        oim_data_bytes=0,
    )


def essent_profile(
    bundle: OimBundle,
    opt_level: str = "O3",
    extrapolation: float = 1.0,
) -> KernelProfile:
    """Per-cycle performance characterisation of the ESSENT backend."""
    ops = bundle.num_ops * extrapolation
    operands = (
        sum(len(r.operands) for layer in bundle.layers for r in layer)
        * extrapolation
    )
    commits = len(bundle.register_commits) * extrapolation
    value_bytes = sum(
        1 if w <= 8 else 2 if w <= 16 else 4 if w <= 32 else 8
        for w in bundle.slot_width
    ) * extrapolation

    dyn_instr = ops * ESSENT_INSTR_PER_OP[opt_level] + commits * 4
    code_bytes = 250_000 + ops * ESSENT_BYTES_PER_OP[opt_level]
    # Aggressive register allocation keeps many intermediates out of memory.
    v_reads = 0.55 * operands + ops * 0.3 + commits * 2
    return KernelProfile(
        kernel="ESSENT",
        design=bundle.design_name,
        ops=ops,
        operands=operands,
        layers=bundle.num_layers,
        num_slots=bundle.num_slots * extrapolation,
        dyn_instr=dyn_instr,
        code_bytes=code_bytes,
        hot_code_bytes=code_bytes * 0.95,
        oim_data_bytes=0.0,
        value_bytes=value_bytes,
        v_reads=v_reads,
        loads=dyn_instr * 0.35,
        branches=ops * ESSENT_BRANCHES_PER_OP + commits,
        mispredict_rate=ESSENT_MISPREDICT,
        code_streamed=True,
        ilp=6.0 if opt_level != "O0" else 3.0,
        fetch_prefetch_hidden=0.75,
        source=None,
    )
