"""Baseline simulator backends: Verilator-like and ESSENT-like.

Public API::

    from repro.baselines import VerilatorBackend, EssentBackend
    from repro.baselines import verilator_profile, essent_profile
"""

from .essent import EssentBackend, essent_cpp, essent_profile
from .verilator import VerilatorBackend, verilator_cpp, verilator_profile

__all__ = [
    "EssentBackend",
    "VerilatorBackend",
    "essent_cpp",
    "essent_profile",
    "verilator_cpp",
    "verilator_profile",
]
