"""Dataflow-graph construction from a flattened FIRRTL design.

This is the "Dataflow Graph Construction" stage of Figure 14.  Expression
trees become interned DFG nodes; FIRRTL static parameters become constant
operand nodes (see :mod:`repro.graph.opsem`); connects that change width get
explicit ``bits``/``pad`` adapters; registers with a reset gain a ``mux``
guarding their next value.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..firrtl.ast import Expr, Literal, Mux, PrimExpr, Ref, ValidIf
from ..firrtl.elaborate import FlatDesign
from ..firrtl.primops import get_op
from .dfg import DataflowGraph


class BuildError(ValueError):
    """Raised when a flattened design cannot be lowered to a DFG."""


def _const_width(value: int) -> int:
    return max(1, value.bit_length())


class _Builder:
    def __init__(self, design: FlatDesign) -> None:
        self.design = design
        self.graph = DataflowGraph(design.name)
        self._signal_nid: Dict[str, int] = {}

    def build(self) -> DataflowGraph:
        design = self.design
        graph = self.graph
        for name, width in design.inputs.items():
            self._signal_nid[name] = graph.add_input(name, width)
        for name, register in design.registers.items():
            self._signal_nid[name] = graph.add_register(
                name, register.width, register.init_value, register.reset,
                clock=register.clock,
            )
        # Resolve definitions in dependency order so recursion stays bounded
        # by single-expression depth even for very deep def-use chains.
        for name in design.topo_definitions():
            self._resolve(name)
        for name, register in design.registers.items():
            next_nid = self._lower_expr(register.next_expr)
            next_nid = self._adapt_width(next_nid, register.width)
            if register.reset is not None:
                reset_nid = self._resolve(register.reset)
                init_nid = graph.add_const(register.init_value, register.width)
                next_nid = graph.add_op(
                    "mux", (reset_nid, init_nid, next_nid), register.width
                )
            graph.set_register_next(name, next_nid)
        for name in design.outputs:
            nid = self._resolve(name)
            graph.set_output(name, self._adapt_width(nid, design.width_of(name)))
        graph.validate()
        return graph

    # ------------------------------------------------------------------
    def _resolve(self, name: str) -> int:
        if name in self._signal_nid:
            return self._signal_nid[name]
        expr = self.design.definitions.get(name)
        if expr is None:
            raise BuildError(f"reference to undefined signal {name!r}")
        # Mark to catch combinational cycles.
        self._signal_nid[name] = -1
        nid = self._lower_expr(expr)
        nid = self._adapt_width(nid, self.design.width_of(name))
        self._signal_nid[name] = nid
        self.graph.signal_map[name] = nid
        return nid

    def _lower_expr(self, expr: Expr) -> int:
        graph = self.graph
        if isinstance(expr, Ref):
            nid = self._resolve(expr.name)
            if nid < 0:
                raise BuildError(f"combinational cycle through {expr.name!r}")
            return nid
        if isinstance(expr, Literal):
            return graph.add_const(expr.value, expr.width)
        if isinstance(expr, ValidIf):
            return self._lower_expr(expr.value)
        if isinstance(expr, Mux):
            sel = self._lower_expr(expr.sel)
            high = self._lower_expr(expr.high)
            low = self._lower_expr(expr.low)
            width = max(graph.node(high).width, graph.node(low).width)
            return graph.add_op("mux", (sel, high, low), width)
        if isinstance(expr, PrimExpr):
            op = get_op(expr.op)
            arg_nids = [self._lower_expr(a) for a in expr.args]
            arg_widths = [graph.node(n).width for n in arg_nids]
            out_width = op.width_rule(arg_widths, expr.params)
            param_nids = [
                graph.add_const(p, _const_width(p)) for p in expr.params
            ]
            return graph.add_op(expr.op, arg_nids + param_nids, out_width)
        raise BuildError(f"unknown expression node {expr!r}")

    def _adapt_width(self, nid: int, target_width: int) -> int:
        """Insert an explicit truncation/extension to match a declared width."""
        graph = self.graph
        width = graph.node(nid).width
        if width == target_width:
            return nid
        if width > target_width:
            hi = graph.add_const(target_width - 1, _const_width(target_width - 1))
            lo = graph.add_const(0, 1)
            return graph.add_op("bits", (nid, hi, lo), target_width)
        pad_to = graph.add_const(target_width, _const_width(target_width))
        return graph.add_op("pad", (nid, pad_to), target_width)


def build_dfg(design: FlatDesign) -> DataflowGraph:
    """Lower a flattened FIRRTL design to a dataflow graph."""
    return _Builder(design).build()
