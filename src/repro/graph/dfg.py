"""The RTL dataflow graph (Figure 1, middle).

Nodes represent primitive operations; edges represent data flow.  Leaves are
top-level inputs, register state reads, and constants.  Static parameters of
FIRRTL primops (e.g. the ``hi``/``lo`` of ``bits``) are modelled as constant
operand nodes so that every operation type has a *fixed arity* -- the
property the paper's compressed OIM format relies on ("the operation type
(N) determines the number of input operands", Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Leaf node kinds (they carry values but perform no computation).
LEAF_OPS = ("input", "const", "reg")


@dataclass(frozen=True)
class DfgNode:
    """One node of the dataflow graph.

    ``op`` is a leaf kind (``input``/``const``/``reg``) or an operation name
    (a FIRRTL primop, ``mux``, or a fused op such as ``muxchain4``).
    ``operands`` are node ids in operand order -- the order the paper's
    ``O`` rank preserves for non-commutative operations.
    """

    nid: int
    op: str
    operands: Tuple[int, ...]
    width: int
    #: Constant value for ``const`` nodes.
    value: int = 0
    #: Source signal name, if this node drives a named signal.
    name: Optional[str] = None

    @property
    def is_leaf(self) -> bool:
        return self.op in LEAF_OPS

    @property
    def is_op(self) -> bool:
        return not self.is_leaf


@dataclass
class RegisterInfo:
    """Register bookkeeping: state node, next-value node, reset behaviour."""

    name: str
    width: int
    state_nid: int
    next_nid: int
    init_value: int = 0
    reset_input: Optional[str] = None
    #: Clock domain name (multi-clock support, Section 6.2).
    clock: str = "clock"


class DataflowGraph:
    """A mutable dataflow graph with interned (hash-consed) nodes.

    Structural interning gives common-subexpression elimination for free
    during construction; optimisation passes rebuild graphs through the same
    interning constructor.
    """

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self.nodes: List[DfgNode] = []
        self.inputs: Dict[str, int] = {}
        self.outputs: Dict[str, int] = {}
        self.registers: Dict[str, RegisterInfo] = {}
        self._intern: Dict[Tuple, int] = {}
        #: Named signals (for waveforms / peek); name -> nid.
        self.signal_map: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Node creation
    # ------------------------------------------------------------------
    def _new_node(self, op: str, operands: Tuple[int, ...], width: int,
                  value: int = 0, name: Optional[str] = None) -> int:
        nid = len(self.nodes)
        self.nodes.append(DfgNode(nid, op, operands, width, value, name))
        return nid

    def add_input(self, name: str, width: int) -> int:
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        nid = self._new_node("input", (), width, name=name)
        self.inputs[name] = nid
        self.signal_map[name] = nid
        return nid

    def add_const(self, value: int, width: int) -> int:
        key = ("const", value, width)
        if key in self._intern:
            return self._intern[key]
        nid = self._new_node("const", (), width, value=value)
        self._intern[key] = nid
        return nid

    def add_register(self, name: str, width: int, init_value: int = 0,
                     reset_input: Optional[str] = None,
                     clock: str = "clock") -> int:
        if name in self.registers:
            raise ValueError(f"duplicate register {name!r}")
        nid = self._new_node("reg", (), width, name=name)
        self.registers[name] = RegisterInfo(
            name=name, width=width, state_nid=nid, next_nid=-1,
            init_value=init_value, reset_input=reset_input, clock=clock,
        )
        self.signal_map[name] = nid
        return nid

    def add_op(self, op: str, operands: Iterable[int], width: int,
               name: Optional[str] = None) -> int:
        operands = tuple(operands)
        for operand in operands:
            if not 0 <= operand < len(self.nodes):
                raise ValueError(f"operand {operand} is not a node id")
        key = (op, operands, width)
        if key in self._intern:
            nid = self._intern[key]
            if name is not None:
                self.signal_map[name] = nid
            return nid
        nid = self._new_node(op, operands, width, name=name)
        self._intern[key] = nid
        if name is not None:
            self.signal_map[name] = nid
        return nid

    def set_register_next(self, name: str, next_nid: int) -> None:
        self.registers[name].next_nid = next_nid

    def set_output(self, name: str, nid: int) -> None:
        self.outputs[name] = nid
        self.signal_map[name] = nid

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, nid: int) -> DfgNode:
        return self.nodes[nid]

    def __len__(self) -> int:
        return len(self.nodes)

    def op_nodes(self) -> Iterator[DfgNode]:
        return (n for n in self.nodes if n.is_op)

    @property
    def num_ops(self) -> int:
        return sum(1 for _ in self.op_nodes())

    def roots(self) -> List[int]:
        """Node ids the simulation must compute: outputs + register nexts."""
        roots = list(self.outputs.values())
        roots.extend(reg.next_nid for reg in self.registers.values())
        return roots

    def consumers(self) -> Dict[int, List[int]]:
        """Map nid -> list of consuming node ids."""
        result: Dict[int, List[int]] = {n.nid: [] for n in self.nodes}
        for node in self.nodes:
            for operand in node.operands:
                result[operand].append(node.nid)
        return result

    def live_nodes(self) -> List[int]:
        """Node ids reachable from the roots (outputs + register nexts)."""
        seen: set = set()
        stack = [nid for nid in self.roots() if nid >= 0]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self.nodes[nid].operands)
        # Keep leaves live unconditionally: inputs and register state are
        # externally visible even when combinationally unused.
        for nid in self.inputs.values():
            seen.add(nid)
        for reg in self.registers.values():
            seen.add(reg.state_nid)
        return sorted(seen)

    def op_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for node in self.op_nodes():
            histogram[node.op] = histogram.get(node.op, 0) + 1
        return histogram

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation."""
        for node in self.nodes:
            for operand in node.operands:
                if not 0 <= operand < len(self.nodes):
                    raise ValueError(f"node {node.nid} has bad operand {operand}")
                if operand >= node.nid and self.nodes[operand].is_op:
                    # Ops are appended after their operands during
                    # construction, so a forward edge to an op means a cycle.
                    raise ValueError(
                        f"node {node.nid} references later op node {operand}"
                    )
        for name, reg in self.registers.items():
            if reg.next_nid < 0:
                raise ValueError(f"register {name!r} has no next-value node")
