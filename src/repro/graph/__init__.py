"""Dataflow-graph substrate: build, optimise, levelize, evaluate.

Public API::

    from repro.graph import build_dfg, optimize, levelize, GraphSimulator
"""

from .build import BuildError, build_dfg
from .dfg import DataflowGraph, DfgNode, RegisterInfo
from .evaluate import GraphSimulator
from .levelize import Levelization, levelize
from .opsem import (
    MAX_CHAIN,
    REDUCE,
    SELECT,
    UNARY,
    OpSemantics,
    all_op_names,
    evaluate_node,
    get_semantics,
    has_semantics,
)
from .optimize import OptStats, eliminate_dead_code, fuse_operator_chains, optimize

__all__ = [
    "BuildError",
    "DataflowGraph",
    "DfgNode",
    "GraphSimulator",
    "Levelization",
    "MAX_CHAIN",
    "OpSemantics",
    "OptStats",
    "REDUCE",
    "RegisterInfo",
    "SELECT",
    "UNARY",
    "all_op_names",
    "build_dfg",
    "eliminate_dead_code",
    "evaluate_node",
    "fuse_operator_chains",
    "get_semantics",
    "has_semantics",
    "levelize",
    "optimize",
]
