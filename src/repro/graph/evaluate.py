"""Direct dataflow-graph evaluation (a second golden model).

Evaluates a :class:`~repro.graph.dfg.DataflowGraph` cycle by cycle in node
order.  Used in tests to cross-check the FIRRTL reference interpreter, the
optimisation passes (optimised graphs must behave identically), and every
kernel backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .dfg import DataflowGraph
from .opsem import get_semantics


class GraphSimulator:
    """Cycle-level evaluator over a (possibly optimised) dataflow graph."""

    def __init__(self, graph: DataflowGraph) -> None:
        graph.validate()
        self.graph = graph
        self.cycle = 0
        self._values: List[int] = [0] * len(graph)
        self._widths: List[int] = [node.width for node in graph.nodes]
        self._ops = [
            (node.nid, get_semantics(node.op), node.operands)
            for node in graph.nodes
            if node.is_op
        ]
        for node in graph.nodes:
            if node.op == "const":
                self._values[node.nid] = node.value
        for reg in graph.registers.values():
            self._values[reg.state_nid] = reg.init_value
        self._dirty = True

    # ------------------------------------------------------------------
    def poke(self, name: str, value: int) -> None:
        nid = self.graph.inputs.get(name)
        if nid is None:
            raise KeyError(f"{name!r} is not an input of {self.graph.name}")
        node = self.graph.node(nid)
        self._values[nid] = value & ((1 << node.width) - 1)
        self._dirty = True

    def peek(self, name: str) -> int:
        nid = self.graph.signal_map.get(name)
        if nid is None:
            raise KeyError(f"unknown signal {name!r}")
        self._settle()
        return self._values[nid]

    def reset(self) -> None:
        for reg in self.graph.registers.values():
            self._values[reg.state_nid] = reg.init_value
        self.cycle = 0
        self._dirty = True

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self._settle()
            values = self._values
            commits = [
                (reg.state_nid, values[reg.next_nid])
                for reg in self.graph.registers.values()
            ]
            for state_nid, value in commits:
                values[state_nid] = value
            self.cycle += 1
            self._dirty = True

    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Evaluate all combinational nodes in topological (id) order."""
        if not self._dirty:
            return
        values = self._values
        widths = self._widths
        for nid, semantics, operands in self._ops:
            args = [values[o] for o in operands]
            arg_widths = [widths[o] for o in operands]
            values[nid] = semantics(args, arg_widths, widths[nid])
        self._dirty = False
