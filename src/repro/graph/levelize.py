"""Levelization and identity-operation accounting (Sections 4.2 and 4.3).

Levelization slices the dataflow graph into layers so that every operation
depends only on outputs of strictly earlier layers (Figure 11).  Values are
conceptually carried forward between layers by *identity operations*; the
paper's Table 1 shows these would dominate the op count (7-10x the effectual
operations), which motivates identity elision: assigning each value a
persistent coordinate so it stays in place in ``LI`` across layers.

:func:`levelize` computes the layers, the per-value identity counts that
*would* be required without elision, and the effectual-op count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .dfg import DataflowGraph


@dataclass
class Levelization:
    """Result of slicing a dataflow graph into layers."""

    #: ``layers[i]`` lists the op node ids evaluated in layer ``i``.
    layers: List[List[int]] = field(default_factory=list)
    #: Layer index of each op node id.
    layer_of: Dict[int, int] = field(default_factory=dict)
    #: Number of effectual (non-identity) operations.
    effectual_ops: int = 0
    #: Identity operations required without elision (Section 4.3 / Table 1).
    identity_ops: int = 0

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def identity_ratio(self) -> float:
        """Identity-to-effectual ratio; the paper reports 6.9-10.7x."""
        if self.effectual_ops == 0:
            return 0.0
        return self.identity_ops / self.effectual_ops


def levelize(graph: DataflowGraph) -> Levelization:
    """Slice ``graph`` into dependence layers and count identity ops.

    Leaves (inputs, registers, constants) live in ``LI`` at layer entry and
    are assigned the virtual producer layer ``-1``; an operation's layer is
    ``1 + max(producer layers of its operands)``.  The graph's construction
    order is already topological, so a single forward sweep suffices.
    """
    result = Levelization()
    producer_layer: Dict[int, int] = {}

    for node in graph.nodes:
        if node.is_leaf:
            producer_layer[node.nid] = -1

    for node in graph.nodes:
        if node.is_leaf:
            continue
        layer = 0
        for operand in node.operands:
            layer = max(layer, producer_layer[operand] + 1)
        producer_layer[node.nid] = layer
        result.layer_of[node.nid] = layer
        while len(result.layers) <= layer:
            result.layers.append([])
        result.layers[layer].append(node.nid)
        result.effectual_ops += 1

    # Identity accounting: a value produced in layer p is available in
    # LI_{p+1}; a consumer in layer c reads LI_c, so the value must be
    # propagated through c - (p + 1) intermediate layers.  Values propagate
    # once per layer regardless of how many consumers a layer has, so each
    # value costs max over consumers.
    farthest_consumer: Dict[int, int] = {}
    for node in graph.nodes:
        if node.is_leaf:
            continue
        layer = result.layer_of[node.nid]
        for operand in node.operands:
            previous = farthest_consumer.get(operand, -1)
            if layer > previous:
                farthest_consumer[operand] = layer

    for nid, consumer_layer in farthest_consumer.items():
        produced = producer_layer[nid]
        hops = consumer_layer - (produced + 1)
        if hops > 0:
            result.identity_ops += hops

    return result
