"""Operation semantics shared by the optimiser, kernels, and baselines.

Every dataflow-graph operation name maps to an :class:`OpSemantics` entry:
its arity, its *class* in the paper's taxonomy (Section 4.1), and a
bit-accurate evaluator.

Classes:

* ``unary``   -- one input; evaluated by the map compute operator
  ``op_u[n]`` (Einsum 12);
* ``reduce``  -- two inputs combined pairwise by the reduce compute operator
  ``op_r[n]`` (Einsum 9); order matters for non-commutative ops, which is
  what the ``O`` rank encodes;
* ``select``  -- three or more inputs that must all be gathered before any
  output can be produced (``mux``, fused chains, ``bits``); evaluated by the
  populate coordinate operator ``op_s[n]`` (Einsum 13).

FIRRTL static parameters are passed as constant operands, so arity is a
function of the operation name alone -- the invariant the optimised OIM
format exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..firrtl.primops import mask

UNARY = "unary"
REDUCE = "reduce"
SELECT = "select"

#: Evaluator signature: (operand values, operand widths, output width).
Evaluator = Callable[[Sequence[int], Sequence[int], int], int]


@dataclass(frozen=True)
class OpSemantics:
    name: str
    arity: int
    klass: str
    fn: Evaluator
    commutative: bool = False

    def __call__(self, args: Sequence[int], widths: Sequence[int], out_width: int) -> int:
        return self.fn(args, widths, out_width)


_TABLE: Dict[str, OpSemantics] = {}


def _define(name: str, arity: int, klass: str, fn: Evaluator,
            commutative: bool = False) -> OpSemantics:
    semantics = OpSemantics(name, arity, klass, fn, commutative)
    _TABLE[name] = semantics
    return semantics


# ----------------------------------------------------------------------
# Binary (reduce-class) operations
# ----------------------------------------------------------------------
_define("add", 2, REDUCE, lambda a, w, ow: mask(a[0] + a[1], ow), commutative=True)
_define("sub", 2, REDUCE, lambda a, w, ow: mask(a[0] - a[1], ow))
_define("mul", 2, REDUCE, lambda a, w, ow: mask(a[0] * a[1], ow), commutative=True)
_define("div", 2, REDUCE, lambda a, w, ow: mask(a[0] // a[1], ow) if a[1] else 0)
_define("rem", 2, REDUCE, lambda a, w, ow: mask(a[0] % a[1], ow) if a[1] else 0)
_define("lt", 2, REDUCE, lambda a, w, ow: int(a[0] < a[1]))
_define("leq", 2, REDUCE, lambda a, w, ow: int(a[0] <= a[1]))
_define("gt", 2, REDUCE, lambda a, w, ow: int(a[0] > a[1]))
_define("geq", 2, REDUCE, lambda a, w, ow: int(a[0] >= a[1]))
_define("eq", 2, REDUCE, lambda a, w, ow: int(a[0] == a[1]), commutative=True)
_define("neq", 2, REDUCE, lambda a, w, ow: int(a[0] != a[1]), commutative=True)
_define("and", 2, REDUCE, lambda a, w, ow: a[0] & a[1], commutative=True)
_define("or", 2, REDUCE, lambda a, w, ow: a[0] | a[1], commutative=True)
_define("xor", 2, REDUCE, lambda a, w, ow: a[0] ^ a[1], commutative=True)
_define("cat", 2, REDUCE, lambda a, w, ow: mask((a[0] << w[1]) | a[1], ow))
_define("dshl", 2, REDUCE, lambda a, w, ow: mask(a[0] << a[1], ow))
_define("dshr", 2, REDUCE, lambda a, w, ow: mask(a[0] >> a[1], ow))
# Parameterised unary FIRRTL ops become binary with a constant operand.
_define("shl", 2, REDUCE, lambda a, w, ow: mask(a[0] << a[1], ow))
_define("shr", 2, REDUCE, lambda a, w, ow: mask(a[0] >> a[1], ow))
_define("pad", 2, REDUCE, lambda a, w, ow: mask(a[0], ow))
_define("head", 2, REDUCE, lambda a, w, ow: mask(a[0] >> max(w[0] - a[1], 0), ow))
_define("tail", 2, REDUCE, lambda a, w, ow: mask(a[0], ow))

# ----------------------------------------------------------------------
# Unary operations
# ----------------------------------------------------------------------
_define("not", 1, UNARY, lambda a, w, ow: mask(~a[0], ow))
_define("neg", 1, UNARY, lambda a, w, ow: mask(-a[0], ow))
_define("cvt", 1, UNARY, lambda a, w, ow: mask(a[0], ow))
_define("andr", 1, UNARY, lambda a, w, ow: int(a[0] == mask(-1, w[0])))
_define("orr", 1, UNARY, lambda a, w, ow: int(a[0] != 0))
_define("xorr", 1, UNARY, lambda a, w, ow: bin(a[0]).count("1") & 1)
_define("asUInt", 1, UNARY, lambda a, w, ow: mask(a[0], ow))
_define("asSInt", 1, UNARY, lambda a, w, ow: mask(a[0], ow))
#: Identity value-propagation op (Section 4.2); inserted conceptually during
#: levelisation and elided by coordinate assignment (Section 4.3).
_define("ident", 1, UNARY, lambda a, w, ow: mask(a[0], ow))

# ----------------------------------------------------------------------
# Select (gather-all) operations
# ----------------------------------------------------------------------
_define("mux", 3, SELECT, lambda a, w, ow: mask(a[1] if a[0] else a[2], ow))
_define("bits", 3, SELECT, lambda a, w, ow: mask(a[0] >> a[2], ow))


def _muxchain(a: Sequence[int], w: Sequence[int], ow: int) -> int:
    """Fused mux chain: [s1, v1, s2, v2, ..., default]."""
    for position in range(0, len(a) - 1, 2):
        if a[position]:
            return mask(a[position + 1], ow)
    return mask(a[-1], ow)


def _logic_chain(op: Callable[[int, int], int]) -> Evaluator:
    def fn(a: Sequence[int], w: Sequence[int], ow: int) -> int:
        result = a[0]
        for value in a[1:]:
            result = op(result, value)
        return mask(result, ow)

    return fn


#: Largest fused chain length; longer chains are fused in segments.
MAX_CHAIN = 8

for _k in range(2, MAX_CHAIN + 1):
    _define(f"muxchain{_k}", 2 * _k + 1, SELECT, _muxchain)
    _define(f"orchain{_k}", _k, SELECT, _logic_chain(lambda x, y: x | y))
    _define(f"andchain{_k}", _k, SELECT, _logic_chain(lambda x, y: x & y))
    _define(f"xorchain{_k}", _k, SELECT, _logic_chain(lambda x, y: x ^ y))


def get_semantics(name: str) -> OpSemantics:
    try:
        return _TABLE[name]
    except KeyError:
        raise KeyError(f"unknown dataflow operation {name!r}") from None


def has_semantics(name: str) -> bool:
    return name in _TABLE


def all_op_names() -> List[str]:
    return sorted(_TABLE)


def evaluate_node(op: str, args: Sequence[int], widths: Sequence[int], out_width: int) -> int:
    return get_semantics(op)(args, widths, out_width)
