"""Dataflow-graph optimisations (Figure 14's "Dataflow Graph Optimization").

Implements the passes the paper's prototype applies before OIM generation:

* **constant propagation/folding** -- classical optimisation, applied "as a
  means to optimize the OIM" (Section 6.1);
* **copy propagation** -- a *data-level* optimisation in the extended TeAAL
  hierarchy (Appendix B.1);
* **dead-code elimination** -- removes unobservable nodes;
* **operator fusion** -- mux-chain extraction plus or/and/xor chain fusion,
  a *cascade-level* optimisation (Appendix B.1);
* **CSE** falls out of the structural interning in
  :class:`~repro.graph.dfg.DataflowGraph`.

Each pass rebuilds the graph, so node ids stay dense and topologically
ordered.  ``preserve_signals=True`` keeps named signals alive for waveform
generation (Section 6.2: "optimizations that eliminate signals are
disabled").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from .dfg import DataflowGraph, DfgNode
from .opsem import MAX_CHAIN, SELECT, get_semantics, has_semantics


@dataclass
class OptStats:
    """Counters reported by :func:`optimize`."""

    nodes_before: int = 0
    nodes_after: int = 0
    constants_folded: int = 0
    copies_propagated: int = 0
    dead_removed: int = 0
    mux_chains_fused: int = 0
    logic_chains_fused: int = 0

    def merge(self, other: "OptStats") -> None:
        self.constants_folded += other.constants_folded
        self.copies_propagated += other.copies_propagated
        self.dead_removed += other.dead_removed
        self.mux_chains_fused += other.mux_chains_fused
        self.logic_chains_fused += other.logic_chains_fused


#: Hook signature: (new graph, old node, mapped operands, stats) -> nid or None.
_NodeHook = Callable[[DataflowGraph, DfgNode, Tuple[int, ...], OptStats], Optional[int]]


def _rebuild(
    graph: DataflowGraph,
    hook: Optional[_NodeHook] = None,
    keep: Optional[Set[int]] = None,
    stats: Optional[OptStats] = None,
) -> DataflowGraph:
    """Rebuild ``graph``, optionally transforming or dropping nodes.

    ``keep`` restricts which old node ids are materialised (for DCE and
    fusion); leaves are always kept.  ``hook`` may return a replacement node
    id in the new graph (e.g. a folded constant).
    """
    stats = stats if stats is not None else OptStats()
    new = DataflowGraph(graph.name)
    mapping: Dict[int, int] = {}

    for name, nid in graph.inputs.items():
        mapping[nid] = new.add_input(name, graph.node(nid).width)
    for name, reg in graph.registers.items():
        mapping[reg.state_nid] = new.add_register(
            name, reg.width, reg.init_value, reg.reset_input, clock=reg.clock
        )

    for node in graph.nodes:
        if node.nid in mapping:
            continue
        if keep is not None and node.nid not in keep:
            continue
        if node.op == "const":
            mapping[node.nid] = new.add_const(node.value, node.width)
            continue
        operands = tuple(mapping[o] for o in node.operands)
        replacement = hook(new, node, operands, stats) if hook else None
        if replacement is None:
            replacement = new.add_op(node.op, operands, node.width)
        mapping[node.nid] = replacement

    for name, reg in graph.registers.items():
        new.set_register_next(name, mapping[reg.next_nid])
    for name, nid in graph.outputs.items():
        new.set_output(name, mapping[nid])
    for name, nid in graph.signal_map.items():
        if nid in mapping:
            new.signal_map[name] = mapping[nid]
    return new


# ----------------------------------------------------------------------
# Constant folding + copy propagation (one combined hook)
# ----------------------------------------------------------------------
def _fold_hook(
    new: DataflowGraph, node: DfgNode, operands: Tuple[int, ...], stats: OptStats
) -> Optional[int]:
    op_nodes = [new.node(o) for o in operands]

    # Constant folding: every operand constant and semantics known.
    if has_semantics(node.op) and op_nodes and all(n.op == "const" for n in op_nodes):
        semantics = get_semantics(node.op)
        value = semantics(
            [n.value for n in op_nodes], [n.width for n in op_nodes], node.width
        )
        stats.constants_folded += 1
        return new.add_const(value, node.width)

    # Mux with a constant selector: keep the chosen branch.
    if node.op == "mux" and op_nodes[0].op == "const":
        stats.constants_folded += 1
        chosen = operands[1] if op_nodes[0].value else operands[2]
        return _copy_or_adapt(new, chosen, node.width, stats)

    # Copy propagation: width-preserving pass-through ops.
    if node.op in ("pad", "asUInt", "asSInt", "cvt", "ident", "tail"):
        source = op_nodes[0]
        if source.width == node.width:
            if node.op in ("pad", "tail"):
                # Parameterised: only a no-op when the width is unchanged.
                stats.copies_propagated += 1
                return operands[0]
            stats.copies_propagated += 1
            return operands[0]
    if node.op == "bits":
        source = op_nodes[0]
        hi, lo = op_nodes[1], op_nodes[2]
        if (
            hi.op == "const"
            and lo.op == "const"
            and lo.value == 0
            and hi.value == source.width - 1
            and node.width == source.width
        ):
            stats.copies_propagated += 1
            return operands[0]

    # Algebraic identities with a constant operand.
    if node.op in ("or", "xor", "add") and len(op_nodes) == 2:
        for position in (0, 1):
            other = 1 - position
            if op_nodes[position].op == "const" and op_nodes[position].value == 0:
                if op_nodes[other].width == node.width:
                    stats.copies_propagated += 1
                    return operands[other]
    if node.op in ("sub", "shl", "shr", "dshl", "dshr"):
        if op_nodes[1].op == "const" and op_nodes[1].value == 0:
            if op_nodes[0].width == node.width:
                stats.copies_propagated += 1
                return operands[0]
    if node.op == "and" and len(op_nodes) == 2:
        for position in (0, 1):
            other = 1 - position
            constant = op_nodes[position]
            if (
                constant.op == "const"
                and constant.value == (1 << constant.width) - 1
                and op_nodes[other].width == node.width
                and constant.width >= op_nodes[other].width
            ):
                stats.copies_propagated += 1
                return operands[other]
    if node.op == "mul" and len(op_nodes) == 2:
        for position in (0, 1):
            other = 1 - position
            if op_nodes[position].op == "const" and op_nodes[position].value == 1:
                if op_nodes[other].width == node.width:
                    stats.copies_propagated += 1
                    return operands[other]
    return None


def _copy_or_adapt(
    new: DataflowGraph, nid: int, width: int, stats: OptStats
) -> int:
    """Return ``nid`` or a width adapter so the replacement keeps its width."""
    node = new.node(nid)
    if node.width == width:
        return nid
    if node.width > width:
        hi = new.add_const(width - 1, max(1, (width - 1).bit_length()))
        lo = new.add_const(0, 1)
        return new.add_op("bits", (nid, hi, lo), width)
    pad_to = new.add_const(width, max(1, width.bit_length()))
    return new.add_op("pad", (nid, pad_to), width)


# ----------------------------------------------------------------------
# Dead-code elimination
# ----------------------------------------------------------------------
def eliminate_dead_code(
    graph: DataflowGraph, preserve_signals: bool = False, stats: Optional[OptStats] = None
) -> DataflowGraph:
    """Drop nodes unreachable from the outputs and register next-values."""
    stats = stats if stats is not None else OptStats()
    live: Set[int] = set()
    roots = graph.roots()
    if preserve_signals:
        roots = roots + list(graph.signal_map.values())
    stack = [nid for nid in roots if nid >= 0]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        stack.extend(graph.nodes[nid].operands)
    stats.dead_removed += sum(
        1 for n in graph.nodes if n.is_op and n.nid not in live
    )
    return _rebuild(graph, keep=live, stats=stats)


# ----------------------------------------------------------------------
# Operator fusion (mux chains and or/and/xor chains)
# ----------------------------------------------------------------------
def fuse_operator_chains(
    graph: DataflowGraph,
    preserve_signals: bool = False,
    stats: Optional[OptStats] = None,
) -> DataflowGraph:
    """Fuse mux chains and associative logic chains into single operations.

    A chain is fused when every interior node has exactly one consumer (and,
    in ``preserve_signals`` mode, no name).  Fused chains become
    ``muxchain{k}`` / ``{or,and,xor}chain{k}`` nodes, up to
    :data:`~repro.graph.opsem.MAX_CHAIN` links.
    """
    stats = stats if stats is not None else OptStats()
    consumers = graph.consumers()
    named: Set[int] = set(graph.signal_map.values()) if preserve_signals else set()
    protected: Set[int] = set(graph.outputs.values())
    protected.update(reg.next_nid for reg in graph.registers.values())

    def fusible_interior(nid: int) -> bool:
        return (
            len(consumers[nid]) == 1
            and nid not in named
            and nid not in protected
        )

    absorbed: Set[int] = set()
    replacements: Dict[int, Tuple[str, Tuple[int, ...]]] = {}

    # --- mux chains ----------------------------------------------------
    def is_chain_interior(nid: int) -> bool:
        """A mux absorbed into its single consumer's default position."""
        if not fusible_interior(nid):
            return False
        consumer = graph.node(consumers[nid][0])
        return consumer.op == "mux" and consumer.operands[2] == nid

    for node in graph.nodes:
        if node.op != "mux" or node.nid in absorbed:
            continue
        if is_chain_interior(node.nid):
            continue  # an inner link; its chain head absorbs it
        # Collect the maximal chain hanging off this head via defaults.
        chain: List[DfgNode] = [node]
        while True:
            default_node = graph.node(chain[-1].operands[2])
            if default_node.op == "mux" and fusible_interior(default_node.nid):
                chain.append(default_node)
            else:
                break
        if len(chain) < 2:
            continue
        # Fuse in segments of MAX_CHAIN links; each segment's default is the
        # next segment's head (kept as a node), or the final default value.
        for start in range(0, len(chain), MAX_CHAIN):
            segment = chain[start:start + MAX_CHAIN]
            if len(segment) < 2:
                continue
            flat: List[int] = []
            for link in segment:
                flat.extend((link.operands[0], link.operands[1]))
            flat.append(segment[-1].operands[2])
            replacements[segment[0].nid] = (
                f"muxchain{len(segment)}", tuple(flat)
            )
            absorbed.update(link.nid for link in segment[1:])
            stats.mux_chains_fused += 1

    # --- associative logic chains ---------------------------------------
    for node in graph.nodes:
        if node.op not in ("or", "and", "xor") or node.nid in absorbed:
            continue
        if node.nid in replacements:
            continue
        parent_same = [
            c for c in consumers[node.nid] if graph.node(c).op == node.op
        ]
        if parent_same and fusible_interior(node.nid):
            continue  # interior of a tree; fused from its root
        # Expand a bounded frontier of same-op interior nodes into leaves.
        frontier: List[int] = list(node.operands)
        local_absorbed: List[int] = []
        expanded = True
        while expanded and len(frontier) < MAX_CHAIN:
            expanded = False
            for position, nid in enumerate(frontier):
                current = graph.node(nid)
                if (
                    current.op == node.op
                    and fusible_interior(nid)
                    and nid not in replacements
                    and nid not in absorbed
                    and len(frontier) + 1 <= MAX_CHAIN
                ):
                    frontier[position:position + 1] = list(current.operands)
                    local_absorbed.append(nid)
                    expanded = True
                    break
        if len(frontier) >= 3:
            absorbed.update(local_absorbed)
            replacements[node.nid] = (
                f"{node.op}chain{len(frontier)}", tuple(frontier)
            )
            stats.logic_chains_fused += 1

    if not replacements:
        return graph

    def fusion_hook(
        new: DataflowGraph, node: DfgNode, operands: Tuple[int, ...], _stats: OptStats
    ) -> Optional[int]:
        return None

    # Rebuild manually to remap fused operand lists (which reference *old*
    # node ids across absorbed interiors).
    new = DataflowGraph(graph.name)
    mapping: Dict[int, int] = {}
    for name, nid in graph.inputs.items():
        mapping[nid] = new.add_input(name, graph.node(nid).width)
    for name, reg in graph.registers.items():
        mapping[reg.state_nid] = new.add_register(
            name, reg.width, reg.init_value, reg.reset_input, clock=reg.clock
        )
    for node in graph.nodes:
        if node.nid in mapping or node.nid in absorbed:
            continue
        if node.op == "const":
            mapping[node.nid] = new.add_const(node.value, node.width)
            continue
        if node.nid in replacements:
            op, old_operands = replacements[node.nid]
            operands = tuple(mapping[o] for o in old_operands)
            mapping[node.nid] = new.add_op(op, operands, node.width)
            continue
        operands = tuple(mapping[o] for o in node.operands)
        mapping[node.nid] = new.add_op(node.op, operands, node.width)
    for name, reg in graph.registers.items():
        new.set_register_next(name, mapping[reg.next_nid])
    for name, nid in graph.outputs.items():
        new.set_output(name, mapping[nid])
    for name, nid in graph.signal_map.items():
        if nid in mapping:
            new.signal_map[name] = mapping[nid]
    return new


# ----------------------------------------------------------------------
# Pass manager
# ----------------------------------------------------------------------
def optimize(
    graph: DataflowGraph,
    constant_folding: bool = True,
    copy_propagation: bool = True,
    fuse_chains: bool = True,
    dead_code: bool = True,
    preserve_signals: bool = False,
) -> Tuple[DataflowGraph, OptStats]:
    """Run the optimisation pipeline; returns the new graph and statistics."""
    stats = OptStats(nodes_before=len(graph))
    if constant_folding or copy_propagation:
        graph = _rebuild(graph, hook=_fold_hook, stats=stats)
    if fuse_chains:
        graph = fuse_operator_chains(graph, preserve_signals, stats)
    if dead_code:
        graph = eliminate_dead_code(graph, preserve_signals, stats)
    stats.nodes_after = len(graph)
    return graph, stats
