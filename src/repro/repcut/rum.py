"""The Register Update Map (RUM) tensor of Cascade 2 (Appendix C).

"For each register, RUM specifies the partition where it is updated and
the partitions where it is read.  At the end of each cycle, this map is
used to propagate updated register values across the LI tensors of the
reading partitions."

The RUM here is a fibertree over ranks ``(C_w, R, C_r)``: writer partition
-> register index -> reader partitions, with mask payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..tensor.tensor import Tensor
from .partition import PartitionResult


@dataclass
class RegisterUpdateMap:
    """Writer/reader relationships for every register."""

    #: register name -> writer partition index.
    writer: Dict[str, int]
    #: register name -> sorted reader partition indices (excluding writer).
    readers: Dict[str, List[int]]
    #: stable register ordering used for tensor coordinates.
    register_order: List[str]
    num_partitions: int

    def to_tensor(self) -> Tensor:
        """The RUM as a mask tensor over ranks (cw, r, cr)."""
        tensor = Tensor(
            ("cw", "r", "cr"),
            [self.num_partitions, len(self.register_order), self.num_partitions],
        )
        index_of = {name: i for i, name in enumerate(self.register_order)}
        for name, writer in self.writer.items():
            for reader in self.readers.get(name, []):
                tensor.set((writer, index_of[name], reader), 1)
        return tensor

    @property
    def total_transfers_per_cycle(self) -> int:
        """Values moved by the synchronisation step each cycle."""
        return sum(len(r) for r in self.readers.values())


def build_rum(result: PartitionResult) -> RegisterUpdateMap:
    """Derive the RUM from a partitioning result."""
    writer: Dict[str, int] = {}
    readers: Dict[str, List[int]] = {}
    for partition in result.partitions:
        for name in partition.owned_registers:
            writer[name] = partition.index
    for partition in result.partitions:
        for name in partition.external_registers:
            readers.setdefault(name, []).append(partition.index)
    for name in readers:
        readers[name].sort()
    order = sorted(writer)
    return RegisterUpdateMap(
        writer=writer,
        readers=readers,
        register_order=order,
        num_partitions=len(result.partitions),
    )
