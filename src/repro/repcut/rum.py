"""The Register Update Map (RUM) tensor of Cascade 2 (Appendix C).

"For each register, RUM specifies the partition where it is updated and
the partitions where it is read.  At the end of each cycle, this map is
used to propagate updated register values across the LI tensors of the
reading partitions."

The RUM here is a fibertree over ranks ``(C_w, R, C_r)``: writer partition
-> register index -> reader partitions, with mask payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..tensor.tensor import Tensor
from .partition import PartitionResult


@dataclass
class RegisterUpdateMap:
    """Writer/reader relationships for every register."""

    #: register name -> writer partition index.
    writer: Dict[str, int]
    #: register name -> sorted reader partition indices (excluding writer).
    readers: Dict[str, List[int]]
    #: stable register ordering used for tensor coordinates.
    register_order: List[str]
    num_partitions: int

    def to_tensor(self) -> Tensor:
        """The RUM as a mask tensor over ranks (cw, r, cr)."""
        tensor = Tensor(
            ("cw", "r", "cr"),
            [self.num_partitions, len(self.register_order), self.num_partitions],
        )
        index_of = {name: i for i, name in enumerate(self.register_order)}
        for name, writer in self.writer.items():
            for reader in self.readers.get(name, []):
                tensor.set((writer, index_of[name], reader), 1)
        return tensor

    @property
    def total_transfers_per_cycle(self) -> int:
        """Values moved by the synchronisation step each cycle."""
        return sum(len(r) for r in self.readers.values())

    # ------------------------------------------------------------------
    # Batched exchange support (repro.shard)
    # ------------------------------------------------------------------
    def exports_of(self) -> Dict[int, List[str]]:
        """Per-writer publish lists: partition index -> registers it must
        export after every edge (those with at least one reader), in a
        stable order.

        The sharded simulator hands each partition worker its export list
        once at construction so the per-cycle step reply carries exactly
        the lane vectors the exchange needs -- no more, no less.
        """
        exports: Dict[int, List[str]] = {
            index: [] for index in range(self.num_partitions)
        }
        for name in sorted(self.readers):
            exports[self.writer[name]].append(name)
        return exports

    def routes(self) -> List[Tuple[str, int, Tuple[int, ...]]]:
        """The RUM flattened to a stable exchange schedule.

        One ``(register, writer, readers)`` triple per register that
        crosses a partition boundary; iterating it is one full ``LI[c+1] =
        LI[c,I] . RUM`` contraction, independent of how wide the lane rank
        is (scalar pokes or B-lane row exchanges).
        """
        return [
            (name, self.writer[name], tuple(self.readers[name]))
            for name in sorted(self.readers)
        ]


def build_rum(result: PartitionResult) -> RegisterUpdateMap:
    """Derive the RUM from a partitioning result."""
    writer: Dict[str, int] = {}
    readers: Dict[str, List[int]] = {}
    for partition in result.partitions:
        for name in partition.owned_registers:
            writer[name] = partition.index
    for partition in result.partitions:
        for name in partition.external_registers:
            readers.setdefault(name, []).append(partition.index)
    for name in readers:
        readers[name].sort()
    order = sorted(writer)
    return RegisterUpdateMap(
        writer=writer,
        readers=readers,
        register_order=order,
        num_partitions=len(result.partitions),
    )
