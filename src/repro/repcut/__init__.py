"""RepCut-style parallel simulation (paper Section 8, Appendix C).

Public API::

    from repro.repcut import partition_graph, build_rum, RepCutSimulator
"""

from .parallel import RepCutSimulator, RepCutSnapshot
from .partition import Partition, PartitionResult, partition_graph
from .rum import RegisterUpdateMap, build_rum

__all__ = [
    "Partition",
    "PartitionResult",
    "RegisterUpdateMap",
    "RepCutSimulator",
    "RepCutSnapshot",
    "build_rum",
    "partition_graph",
]
