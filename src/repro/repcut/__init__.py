"""RepCut-style parallel simulation (paper Section 8, Appendix C).

Public API::

    from repro.repcut import partition_graph, build_rum, RepCutSimulator
"""

from .parallel import RepCutSimulator, RepCutSnapshot
from .partition import STRATEGIES, Partition, PartitionResult, partition_graph
from .refine import GainBuckets, RefineStats, refine_assignment
from .rum import RegisterUpdateMap, build_rum

__all__ = [
    "GainBuckets",
    "Partition",
    "PartitionResult",
    "RefineStats",
    "RegisterUpdateMap",
    "RepCutSimulator",
    "RepCutSnapshot",
    "STRATEGIES",
    "build_rum",
    "partition_graph",
    "refine_assignment",
]
