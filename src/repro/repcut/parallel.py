"""Synchronised multi-partition simulation (Cascade 2's final Einsum).

Each partition runs an independent RTeAAL kernel simulator; at the end of
every cycle the synchronisation step propagates each register's new value
from its writer partition to all reader partitions -- the
``LI[c+1] = LI[c,I] . RUM`` Einsum of Cascade 2, realised as pokes into the
reader partitions' replica inputs.

The test suite checks lockstep equivalence with the single-partition
:class:`~repro.sim.simulator.Simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..graph.dfg import DataflowGraph
from ..sim.simulator import DesignLike, SimSnapshot, Simulator, compile_graph
from .partition import PartitionResult, missing_signal_error, partition_graph
from .rum import RegisterUpdateMap, build_rum


@dataclass
class RepCutSnapshot:
    """A checkpoint of a :class:`RepCutSimulator`: one per-partition
    scalar snapshot plus the synchronisation state."""

    partitions: List[SimSnapshot]
    cycle: int
    last_synced: Dict[str, int]
    #: Per-partition owned registers: partition states only restore onto
    #: the cut (strategy / cap) that produced them.
    cut: Tuple[Tuple[str, ...], ...] = ()


class RepCutSimulator:
    """A RepCut-partitioned full-cycle simulator.

    Parameters
    ----------
    design:
        Anything :func:`repro.sim.simulator.compile_design` accepts, or a
        :class:`DataflowGraph` directly.
    num_partitions:
        Partition count (paper: one per thread).  Empty partitions are
        pruned, so ``num_partitions`` is an upper bound.
    kernel:
        RTeAAL kernel configuration used inside each partition.
    partitioner:
        ``"greedy"`` or ``"refined"`` (replication-capped KL/FM); see
        :func:`repro.repcut.partition.partition_graph`.
    max_replication:
        Replication cap for the refined partitioner, as a fraction of
        the design's ops (``None`` = uncapped).
    preserve_signals:
        Keep named intermediate signals observable when compiling from
        source (mirrors the scalar :class:`~repro.sim.Simulator` knob;
        a pre-compiled :class:`DataflowGraph` is used as-is).
    """

    def __init__(
        self,
        design: Union[DesignLike, DataflowGraph],
        num_partitions: int = 2,
        kernel: str = "PSU",
        partitioner: str = "greedy",
        max_replication: Optional[float] = None,
        preserve_signals: bool = False,
    ) -> None:
        graph = compile_graph(design, preserve_signals=preserve_signals)
        self.result: PartitionResult = partition_graph(
            graph, num_partitions, strategy=partitioner,
            max_replication=max_replication,
        )
        self._design_signals = set(graph.signal_map)
        self.rum: RegisterUpdateMap = build_rum(self.result)
        self.simulators: List[Simulator] = [
            Simulator(
                p.graph, kernel=kernel, optimize_graph=False,
                preserve_signals=preserve_signals,
            )
            for p in self.result.partitions
        ]
        self._input_sinks: Dict[str, List[int]] = {}
        for index, partition in enumerate(self.result.partitions):
            for name in partition.graph.inputs:
                if name in partition.external_registers:
                    continue
                self._input_sinks.setdefault(name, []).append(index)
        self._register_home: Dict[str, int] = dict(self.rum.writer)
        self._signal_home: Dict[str, int] = {}
        for index, partition in enumerate(self.result.partitions):
            for name in partition.graph.signal_map:
                self._signal_home.setdefault(name, index)
        for name, home in self._register_home.items():
            self._signal_home[name] = home
        self.cycle = 0
        self._last_synced: Dict[str, int] = {}
        self.sync_sent = 0
        self.sync_suppressed = 0
        self._sync_replicas()

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self.simulators)

    def poke(self, name: str, value: int) -> None:
        sinks = self._input_sinks.get(name)
        if not sinks:
            raise KeyError(f"{name!r} is not an input of any partition")
        for index in sinks:
            self.simulators[index].poke(name, value)

    def peek(self, name: str) -> int:
        home = self._signal_home.get(name)
        if home is None:
            raise missing_signal_error(
                name, self._design_signals, self.result.partitions
            )
        return self.simulators[home].peek(name)

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            # Partitions are fully decoupled within a cycle: evaluate and
            # commit each independently (parallelisable across threads).
            for simulator in self.simulators:
                simulator.step()
            self._sync_replicas()
            self.cycle += 1

    def reset(self) -> None:
        for simulator in self.simulators:
            simulator.reset()
        # Forget differential-exchange history: replicas must be refreshed
        # with the post-reset register values unconditionally.
        self._last_synced.clear()
        self._sync_replicas()
        self.cycle = 0

    # ------------------------------------------------------------------
    # Checkpointing (delegates to the per-partition scalar snapshots)
    # ------------------------------------------------------------------
    def snapshot(self) -> RepCutSnapshot:
        """Checkpoint every partition plus the differential-exchange
        history, so :meth:`restore` resumes bit-exactly mid-run."""
        return RepCutSnapshot(
            partitions=[simulator.snapshot() for simulator in self.simulators],
            cycle=self.cycle,
            last_synced=dict(self._last_synced),
            cut=self._cut(),
        )

    def _cut(self) -> Tuple[Tuple[str, ...], ...]:
        return tuple(
            tuple(p.owned_registers) for p in self.result.partitions
        )

    def restore(self, snapshot: RepCutSnapshot) -> None:
        """Return to a :meth:`snapshot` checkpoint."""
        if len(snapshot.partitions) != len(self.simulators):
            raise ValueError(
                f"snapshot has {len(snapshot.partitions)} partitions, "
                f"simulator has {len(self.simulators)}"
            )
        if snapshot.cut and snapshot.cut != self._cut():
            raise ValueError(
                "snapshot was taken under a different partitioning (the "
                "register->partition cut differs, e.g. another partitioner= "
                "strategy or max_replication); partition states are only "
                "restorable onto the cut that produced them"
            )
        for simulator, state in zip(self.simulators, snapshot.partitions):
            simulator.restore(state)
        self.cycle = snapshot.cycle
        self._last_synced = dict(snapshot.last_synced)

    # ------------------------------------------------------------------
    def _sync_replicas(self) -> None:
        """The synchronisation step: propagate register updates via the RUM.

        Implements *differential exchange* (Box 1): only registers whose
        value actually changed are sent to their readers.  The first sync
        (no history) sends everything.
        """
        for name, readers in self.rum.readers.items():
            writer = self.rum.writer[name]
            value = self.simulators[writer].peek(name)
            previous = self._last_synced.get(name)
            if previous == value:
                self.sync_suppressed += len(readers)
                continue
            self._last_synced[name] = value
            self.sync_sent += len(readers)
            for reader in readers:
                self.simulators[reader].poke(name, value)

    def sync_traffic_per_cycle(self) -> int:
        """Register values exchanged each cycle without differential
        exchange (the upper bound the RUM encodes)."""
        return self.rum.total_transfers_per_cycle

    @property
    def differential_savings(self) -> float:
        """Fraction of synchronisation traffic suppressed so far."""
        total = self.sync_sent + self.sync_suppressed
        return self.sync_suppressed / total if total else 0.0
