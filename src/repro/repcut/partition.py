"""RepCut-style replication-aided partitioning (Section 8, Appendix C).

RepCut partitions the dataflow graph so each register is *updated* in
exactly one partition, replicating shared combinational fan-in cones so
partitions have no intra-cycle dependencies.  At the end of each cycle, a
synchronisation step propagates updated register values to every partition
that reads them (the ``RUM`` tensor of Cascade 2).

The partitioner here is a greedy balanced assignment over register cones
(real RepCut uses hypergraph partitioning; greedy preserves the properties
the paper relies on -- full decoupling with bounded replication -- and the
ablation bench measures the replication overhead it induces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..graph.dfg import DataflowGraph


@dataclass
class Partition:
    """One decoupled partition: a standalone dataflow graph.

    Registers the partition reads but does not own appear as *inputs*
    (their replicas), refreshed by the synchronisation step.
    """

    index: int
    graph: DataflowGraph
    owned_registers: List[str]
    external_registers: List[str]
    outputs: List[str]

    @property
    def num_ops(self) -> int:
        return self.graph.num_ops

    @property
    def clock_domains(self) -> List[str]:
        """Clock domains this partition commits (its owned registers').

        Replica inputs have no clock; a partition only participates in an
        edge of a domain it owns registers in, which is what lets the
        sharded scheduler skip idle partitions on ``step_domain``.
        """
        return sorted(
            {self.graph.registers[name].clock for name in self.owned_registers}
        )


@dataclass
class PartitionResult:
    partitions: List[Partition]
    #: Ops appearing in more than one partition (replication overhead).
    replicated_ops: int
    original_ops: int

    @property
    def replication_overhead(self) -> float:
        total = sum(p.num_ops for p in self.partitions)
        if self.original_ops == 0:
            return 0.0
        return total / self.original_ops - 1.0


def _cone(graph: DataflowGraph, root: int) -> Set[int]:
    """All op/leaf node ids reachable (backwards) from ``root``."""
    seen: Set[int] = set()
    stack = [root]
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(graph.nodes[nid].operands)
    return seen


def partition_graph(graph: DataflowGraph, num_partitions: int) -> PartitionResult:
    """Split ``graph`` into ``num_partitions`` decoupled partitions."""
    if num_partitions < 1:
        raise ValueError("need at least one partition")
    graph.validate()

    # Work items: each register's next-value cone, plus each output's cone.
    items: List[Tuple[str, str, int]] = []  # (kind, name, root nid)
    for name, reg in graph.registers.items():
        items.append(("reg", name, reg.next_nid))
    for name, nid in graph.outputs.items():
        items.append(("out", name, nid))

    cones = {(kind, name): _cone(graph, root) for kind, name, root in items}
    order = sorted(items, key=lambda item: -len(cones[(item[0], item[1])]))

    loads = [0] * num_partitions
    member_nodes: List[Set[int]] = [set() for _ in range(num_partitions)]
    assignment: Dict[Tuple[str, str], int] = {}
    for kind, name, _root in order:
        cone = cones[(kind, name)]
        # Greedy balanced placement: choose the partition whose *resulting*
        # load is smallest.  Shared fan-in is free (already replicated
        # there), so this jointly minimises replication and imbalance.
        def resulting_load(p: int) -> Tuple[int, int]:
            new_nodes = len(cone - member_nodes[p])
            return (loads[p] + new_nodes, new_nodes)

        best = min(range(num_partitions), key=resulting_load)
        assignment[(kind, name)] = best
        member_nodes[best] |= cone
        loads[best] = len(member_nodes[best])

    partitions: List[Partition] = []
    op_owner_count: Dict[int, int] = {}
    for index in range(num_partitions):
        partitions.append(
            _build_partition(graph, index, assignment, member_nodes[index])
        )
        for nid in member_nodes[index]:
            if graph.node(nid).is_op:
                op_owner_count[nid] = op_owner_count.get(nid, 0) + 1

    replicated = sum(count - 1 for count in op_owner_count.values() if count > 1)
    return PartitionResult(
        partitions=partitions,
        replicated_ops=replicated,
        original_ops=graph.num_ops,
    )


def _build_partition(
    graph: DataflowGraph,
    index: int,
    assignment: Dict[Tuple[str, str], int],
    nodes: Set[int],
) -> Partition:
    owned = [
        name for (kind, name), p in assignment.items()
        if kind == "reg" and p == index
    ]
    outputs = [
        name for (kind, name), p in assignment.items()
        if kind == "out" and p == index
    ]
    owned_set = set(owned)

    sub = DataflowGraph(f"{graph.name}.p{index}")
    mapping: Dict[int, int] = {}
    external: List[str] = []

    # Leaves first: inputs, constants, registers (owned or replica-inputs).
    for node in graph.nodes:
        if node.nid not in nodes:
            continue
        if node.op == "input":
            mapping[node.nid] = sub.add_input(node.name, node.width)
        elif node.op == "const":
            mapping[node.nid] = sub.add_const(node.value, node.width)
        elif node.op == "reg":
            reg = graph.registers[node.name]
            if node.name in owned_set:
                mapping[node.nid] = sub.add_register(
                    node.name, reg.width, reg.init_value, reg.reset_input,
                    clock=reg.clock,
                )
            else:
                # A replica: reads last cycle's value, refreshed by sync.
                mapping[node.nid] = sub.add_input(node.name, node.width)
                external.append(node.name)

    # An owned register whose next value does not read its own state (e.g.
    # a pure pipeline register) has no state node in the cone; declare it
    # anyway -- the partition still commits it.
    for name in owned:
        reg = graph.registers[name]
        if reg.state_nid not in mapping:
            mapping[reg.state_nid] = sub.add_register(
                name, reg.width, reg.init_value, reg.reset_input,
                clock=reg.clock,
            )

    for node in graph.nodes:
        if node.nid not in nodes or node.nid in mapping or node.is_leaf:
            continue
        operands = tuple(mapping[o] for o in node.operands)
        mapping[node.nid] = sub.add_op(node.op, operands, node.width)

    for name in owned:
        sub.set_register_next(name, mapping[graph.registers[name].next_nid])
    for name in outputs:
        sub.set_output(name, mapping[graph.outputs[name]])
    # Preserve observable names that landed in this partition.
    for name, nid in graph.signal_map.items():
        if nid in mapping:
            sub.signal_map.setdefault(name, mapping[nid])
    sub.validate()
    return Partition(
        index=index,
        graph=sub,
        owned_registers=owned,
        external_registers=external,
        outputs=outputs,
    )
