"""RepCut-style replication-aided partitioning (Section 8, Appendix C).

RepCut partitions the dataflow graph so each register is *updated* in
exactly one partition, replicating shared combinational fan-in cones so
partitions have no intra-cycle dependencies.  At the end of each cycle, a
synchronisation step propagates updated register values to every partition
that reads them (the ``RUM`` tensor of Cascade 2).

Two partitioning strategies are available:

* ``"greedy"`` -- balanced greedy assignment over register/output cones
  (the historical default).  It preserves the properties the paper
  relies on -- full decoupling with bounded replication -- but is blind
  to cone sharing, so heavily shared fan-in (rocket/small SoCs) gets
  replicated into every partition (~97% overhead at P=2).
* ``"refined"`` -- the greedy seed followed by replication-capped KL/FM
  refinement over the cone-sharing hypergraph
  (:mod:`repro.repcut.refine`): cones move between partitions to
  minimise ``replicated_ops + lambda * imbalance`` under an explicit
  ``max_replication`` cap, which is what turns P partitions into a net
  win instead of P-fold duplicated work.

Partitions that end up owning nothing (``num_partitions`` larger than
the number of cones, or refinement consolidating a shared cluster) are
pruned with a warning rather than returned as idle empty shells.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..graph.dfg import DataflowGraph

STRATEGIES = ("greedy", "refined")


@dataclass
class Partition:
    """One decoupled partition: a standalone dataflow graph.

    Registers the partition reads but does not own appear as *inputs*
    (their replicas), refreshed by the synchronisation step.
    """

    index: int
    graph: DataflowGraph
    owned_registers: List[str]
    external_registers: List[str]
    outputs: List[str]

    @property
    def num_ops(self) -> int:
        return self.graph.num_ops

    @property
    def clock_domains(self) -> List[str]:
        """Clock domains this partition commits (its owned registers').

        Replica inputs have no clock; a partition only participates in an
        edge of a domain it owns registers in, which is what lets the
        sharded scheduler skip idle partitions on ``step_domain``.
        """
        return sorted(
            {self.graph.registers[name].clock for name in self.owned_registers}
        )


@dataclass
class PartitionResult:
    partitions: List[Partition]
    #: Ops appearing in more than one partition (replication overhead).
    replicated_ops: int
    original_ops: int
    #: Strategy that produced this result (``greedy``/``refined``).
    strategy: str = "greedy"
    #: Partition count the caller asked for; ``len(partitions)`` may be
    #: smaller after empty partitions are pruned.
    requested_partitions: int = 0
    #: KL/FM statistics when ``strategy == "refined"`` (else ``None``).
    refine_stats: Optional[object] = None
    #: Artifact-cache digest of (graph fingerprint x partition params)
    #: when the :mod:`repro.serve` cache produced or stored this result;
    #: derived artifacts (the RUM) key off it without re-fingerprinting.
    cache_digest: Optional[str] = None

    @property
    def replication_overhead(self) -> float:
        total = sum(p.num_ops for p in self.partitions)
        if self.original_ops == 0:
            return 0.0
        return total / self.original_ops - 1.0

    @property
    def max_partition_ops(self) -> int:
        """Ops of the heaviest partition: the per-cycle critical path on
        >= P free cores."""
        return max((p.num_ops for p in self.partitions), default=0)


def missing_signal_error(
    name: str,
    design_signals: Set[str],
    partitions: List[Partition],
) -> KeyError:
    """A diagnostic ``KeyError`` for a ``peek`` no partition can serve.

    Shared by the partitioned simulators (:class:`repro.repcut
    .RepCutSimulator`, :class:`repro.shard.ShardedBatchSimulator`): a
    preserved signal can exist in the source graph yet land in no
    partition (its node feeds no register or output), which used to
    surface as a bare ``KeyError`` indistinguishable from a typo.
    """
    if name not in design_signals:
        return KeyError(
            f"unknown signal {name!r}; it may have been optimised away "
            "(construct the simulator with preserve_signals=True)"
        )
    hint = ""
    parent = name.rsplit(".", 1)[0] if "." in name else None
    if parent:
        owners = sorted(
            p.index for p in partitions
            if any(
                s == parent or s.startswith(parent + ".")
                for s in p.graph.signal_map
            )
        )
        if owners:
            hint = (
                f"; partitions {owners} own related signals under "
                f"{parent!r}"
            )
    return KeyError(
        f"signal {name!r} exists in the design but was not placed in any "
        "partition (its node feeds no register or output, so no cone "
        "carried it); construct the simulator with preserve_signals=True "
        f"and peek a signal a partition owns{hint}"
    )


def _cone(graph: DataflowGraph, root: int) -> Set[int]:
    """All op/leaf node ids reachable (backwards) from ``root``."""
    seen: Set[int] = set()
    stack = [root]
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(graph.nodes[nid].operands)
    return seen


def _greedy_assignment(
    items: List[Tuple[str, str, int]],
    cones: Dict[Tuple[str, str], Set[int]],
    num_partitions: int,
) -> Dict[Tuple[str, str], int]:
    """The greedy balanced seed: place cones largest-first onto the
    partition whose *resulting* load is smallest.  Shared fan-in is free
    (already replicated there), so this jointly minimises replication
    and imbalance -- one cone at a time."""
    order = sorted(items, key=lambda item: -len(cones[(item[0], item[1])]))
    loads = [0] * num_partitions
    member_nodes: List[Set[int]] = [set() for _ in range(num_partitions)]
    assignment: Dict[Tuple[str, str], int] = {}
    for kind, name, _root in order:
        cone = cones[(kind, name)]

        def resulting_load(p: int) -> Tuple[int, int]:
            new_nodes = len(cone - member_nodes[p])
            return (loads[p] + new_nodes, new_nodes)

        best = min(range(num_partitions), key=resulting_load)
        assignment[(kind, name)] = best
        member_nodes[best] |= cone
        loads[best] = len(member_nodes[best])
    return assignment


def partition_graph(
    graph: DataflowGraph,
    num_partitions: int,
    strategy: str = "greedy",
    max_replication: Optional[float] = None,
    imbalance_weight: float = 1.0,
    max_passes: int = 8,
) -> PartitionResult:
    """Split ``graph`` into at most ``num_partitions`` decoupled partitions.

    Parameters
    ----------
    strategy:
        ``"greedy"`` (balanced cone assignment, the default) or
        ``"refined"`` (greedy seed + replication-capped KL/FM
        refinement; see :mod:`repro.repcut.refine`).
    max_replication:
        Replication cap for the refiner, as a fraction of the graph's
        ops (e.g. ``0.25`` allows 25% replicated work).  ``None`` leaves
        the cap off; the cost's imbalance term still applies.  Ignored
        by the greedy strategy.
    imbalance_weight:
        The lambda of the refinement cost
        ``replicated_ops + lambda * (max_partition_ops - ideal)``.
    max_passes:
        FM pass budget per refinement phase.

    Partitions owning no register and no output are pruned (with a
    ``RuntimeWarning`` naming the effective count), so executors never
    spawn idle workers; ``requested_partitions`` records the ask.
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition")
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown partitioning strategy {strategy!r}; choose from "
            f"{', '.join(STRATEGIES)}"
        )
    graph.validate()

    from ..serve import artifacts

    if artifacts.get_cache() is not None:
        # Content-addressed reuse of the whole cut (including refined-FM
        # results, the ~85 s item on gemmini-32): keyed by the canonical
        # graph fingerprint x every parameter that shapes the assignment.
        digest = artifacts.design_fingerprint(
            graph, stage="partition", num_partitions=num_partitions,
            strategy=strategy, max_replication=max_replication,
            imbalance_weight=imbalance_weight, max_passes=max_passes,
        )
        def _build() -> PartitionResult:
            result = _partition_graph_uncached(
                graph, num_partitions, strategy, max_replication,
                imbalance_weight, max_passes,
            )
            # Prime each partition graph's fingerprint memo so the
            # pickled result carries them; per-partition bundle lookups
            # on warm starts then skip re-hashing the subgraphs.
            for partition in result.partitions:
                artifacts.design_fingerprint(partition.graph)
            return result

        result = artifacts.cache_through("partition", digest, _build)
        result.cache_digest = digest
        return result
    return _partition_graph_uncached(
        graph, num_partitions, strategy, max_replication,
        imbalance_weight, max_passes,
    )


def _partition_graph_uncached(
    graph: DataflowGraph,
    num_partitions: int,
    strategy: str,
    max_replication: Optional[float],
    imbalance_weight: float,
    max_passes: int,
) -> PartitionResult:

    # Work items: each register's next-value cone, plus each output's cone.
    items: List[Tuple[str, str, int]] = []  # (kind, name, root nid)
    for name, reg in graph.registers.items():
        items.append(("reg", name, reg.next_nid))
    for name, nid in graph.outputs.items():
        items.append(("out", name, nid))

    cones = {(kind, name): _cone(graph, root) for kind, name, root in items}
    assignment = _greedy_assignment(items, cones, num_partitions)

    refine_stats = None
    if strategy == "refined" and num_partitions > 1 and len(items) > 1:
        from .refine import refine_assignment

        assignment, refine_stats = refine_assignment(
            graph, items, cones, assignment, num_partitions,
            max_replication=max_replication,
            imbalance_weight=imbalance_weight,
            max_passes=max_passes,
        )

    member_nodes: List[Set[int]] = [set() for _ in range(num_partitions)]
    for (kind, name), index in assignment.items():
        member_nodes[index] |= cones[(kind, name)]

    # Prune empty partitions and compact the indices.
    used = sorted({index for index in assignment.values()})
    if len(used) < num_partitions:
        warnings.warn(
            f"partition_graph: requested {num_partitions} partitions but "
            f"only {len(used)} own a register or output after "
            f"{strategy!r} assignment; running with {len(used)}",
            RuntimeWarning,
            stacklevel=2,
        )
    remap = {old: new for new, old in enumerate(used)}
    assignment = {key: remap[index] for key, index in assignment.items()}
    member_nodes = [member_nodes[old] for old in used]

    partitions: List[Partition] = []
    op_owner_count: Dict[int, int] = {}
    for index in range(len(used)):
        partitions.append(
            _build_partition(graph, index, assignment, member_nodes[index])
        )
        for nid in member_nodes[index]:
            if graph.node(nid).is_op:
                op_owner_count[nid] = op_owner_count.get(nid, 0) + 1

    replicated = sum(count - 1 for count in op_owner_count.values() if count > 1)
    return PartitionResult(
        partitions=partitions,
        replicated_ops=replicated,
        original_ops=graph.num_ops,
        strategy=strategy,
        requested_partitions=num_partitions,
        refine_stats=refine_stats,
    )


def _build_partition(
    graph: DataflowGraph,
    index: int,
    assignment: Dict[Tuple[str, str], int],
    nodes: Set[int],
) -> Partition:
    owned = [
        name for (kind, name), p in assignment.items()
        if kind == "reg" and p == index
    ]
    outputs = [
        name for (kind, name), p in assignment.items()
        if kind == "out" and p == index
    ]
    owned_set = set(owned)

    sub = DataflowGraph(f"{graph.name}.p{index}")
    mapping: Dict[int, int] = {}
    external: List[str] = []

    # Leaves first: inputs, constants, registers (owned or replica-inputs).
    for node in graph.nodes:
        if node.nid not in nodes:
            continue
        if node.op == "input":
            mapping[node.nid] = sub.add_input(node.name, node.width)
        elif node.op == "const":
            mapping[node.nid] = sub.add_const(node.value, node.width)
        elif node.op == "reg":
            reg = graph.registers[node.name]
            if node.name in owned_set:
                mapping[node.nid] = sub.add_register(
                    node.name, reg.width, reg.init_value, reg.reset_input,
                    clock=reg.clock,
                )
            else:
                # A replica: reads last cycle's value, refreshed by sync.
                mapping[node.nid] = sub.add_input(node.name, node.width)
                external.append(node.name)

    # An owned register whose next value does not read its own state (e.g.
    # a pure pipeline register) has no state node in the cone; declare it
    # anyway -- the partition still commits it.
    for name in owned:
        reg = graph.registers[name]
        if reg.state_nid not in mapping:
            mapping[reg.state_nid] = sub.add_register(
                name, reg.width, reg.init_value, reg.reset_input,
                clock=reg.clock,
            )

    for node in graph.nodes:
        if node.nid not in nodes or node.nid in mapping or node.is_leaf:
            continue
        operands = tuple(mapping[o] for o in node.operands)
        mapping[node.nid] = sub.add_op(node.op, operands, node.width)

    for name in owned:
        sub.set_register_next(name, mapping[graph.registers[name].next_nid])
    for name in outputs:
        sub.set_output(name, mapping[graph.outputs[name]])
    # Preserve observable names that landed in this partition.
    for name, nid in graph.signal_map.items():
        if nid in mapping:
            sub.signal_map.setdefault(name, mapping[nid])
    sub.validate()
    return Partition(
        index=index,
        graph=sub,
        owned_registers=owned,
        external_registers=external,
        outputs=outputs,
    )
