"""Replication-capped KL/FM partition refinement (the "real RepCut" rung).

The greedy cone assignment in :mod:`repro.repcut.partition` balances
partition loads but is blind to *cone sharing*: on designs whose
register cones overlap heavily (rocket/small SoCs share a ~97% fan-in
core) it replicates almost the whole graph into every partition, so
serial sharding costs ~P× and parallel execution only wins that work
back.  Real partitioners in this space (RepCut's min-cut with bounded
replication, Manticore's static placement, GSIM's partition-for-
locality) find low-replication cuts instead.

This module refines the greedy seed with Fiduccia–Mattheyses-style
passes over the *cone-sharing hypergraph*: register/output cones are the
movable units, graph nodes their (hyper)pins, and a node is replicated
whenever cones in different partitions share it.  The cost minimised is

    cost = replicated_ops + lambda * (max_partition_ops - ideal)

with an explicit **replication cap**: a move that does not itself reduce
replication is admissible only while total assigned ops stay within
``(1 + max_replication) * original_ops``.

Mechanics, in the classic FM mould:

* **Gain buckets** (:class:`GainBuckets`): candidate moves ``(unit,
  target)`` are bucketed by their integer replication gain and kept
  up to date incrementally -- after a move only units touching the two
  affected partitions are re-gained.  Selection scans buckets from the
  highest gain down and picks the admissible move with the best *total*
  (imbalance-aware) gain inside that bucket.
* **Prefix-revert passes**: each pass tentatively applies best moves
  (locking each unit after one move) even through cost plateaus, then
  rolls back to the best prefix.  Pass cost is therefore monotonically
  non-increasing.
* **Coarsening**: near-identical cones (Jaccard overlap >=
  ``cluster_similarity``) first move as one cluster, which is what lets
  a pass escape the symmetric plateau of a balanced seed -- moving one
  of 30 cones sharing a core gains nothing, moving all of them gains
  the core.  A second phase re-runs the passes at single-cone
  granularity to polish the coarse result.

The refined assignment is never worse than the seed: if every pass
fails to improve, the seed assignment is returned unchanged (with
``RefineStats.reverted_to_seed`` set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.dfg import DataflowGraph

try:  # NumPy accelerates the gain sweeps; pure Python stays bit-identical.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on no-numpy CI arms
    _np = None

ItemKey = Tuple[str, str]  # ("reg"|"out", name)

#: Default Jaccard overlap above which two cones coarsen into one cluster.
DEFAULT_CLUSTER_SIMILARITY = 0.75


@dataclass
class RefineStats:
    """What refinement did, for reporting and for the monotonicity tests."""

    #: Movable units after coarsening (clusters + singleton cones).
    num_units: int
    #: Clusters with more than one cone (0 means coarsening was a no-op).
    num_clusters: int
    #: Cost of the greedy seed assignment.
    seed_cost: float
    #: Replicated op count of the greedy seed.
    seed_replicated: int
    #: Cost trajectory: entry 0 is the cost entering the first pass (after
    #: cluster consolidation), then one entry per completed FM pass.  The
    #: prefix-revert discipline makes this monotonically non-increasing.
    pass_costs: List[float] = field(default_factory=list)
    #: Final cost / replicated ops of the returned assignment.
    final_cost: float = 0.0
    final_replicated: int = 0
    #: Moves surviving the prefix reverts, across all passes.
    moves_kept: int = 0
    #: True when refinement could not beat the seed and returned it as-is.
    reverted_to_seed: bool = False


class GainBuckets:
    """FM gain buckets: candidate moves keyed by integer replication gain.

    Each entry maps a move ``(unit, target_partition)`` to its cached
    ``(leave, new)`` pin counts -- the nodes the unit's cone would stop
    replicating in its current partition and start replicating in the
    target.  ``leave - new`` is the bucket key.  Entries are refreshed
    incrementally by the refinement loop, so lookups inside a bucket are
    always exact.
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, Dict[Tuple[int, int], Tuple[int, int]]] = {}
        self._gain_of: Dict[Tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._gain_of)

    def put(self, unit: int, target: int, leave: int, new: int) -> None:
        """Insert or refresh the move ``unit -> target``."""
        move = (unit, target)
        self.discard(unit, target)
        gain = leave - new
        self._gain_of[move] = gain
        self._buckets.setdefault(gain, {})[move] = (leave, new)

    def discard(self, unit: int, target: int) -> None:
        move = (unit, target)
        gain = self._gain_of.pop(move, None)
        if gain is None:
            return
        bucket = self._buckets[gain]
        del bucket[move]
        if not bucket:
            del self._buckets[gain]

    def discard_unit(self, unit: int, num_partitions: int) -> None:
        for target in range(num_partitions):
            self.discard(unit, target)

    def buckets_desc(
        self,
    ) -> Iterable[Tuple[int, Dict[Tuple[int, int], Tuple[int, int]]]]:
        """Buckets from the highest replication gain down."""
        for gain in sorted(self._buckets, reverse=True):
            yield gain, self._buckets[gain]


class _RefineState:
    """Partition state shared by the FM passes: per-node cover counts,
    per-partition op loads, and the replication/imbalance bookkeeping.

    ``counts[n][p]`` is how many assigned cones in partition ``p``
    contain op node ``n``; a node is *replicated* once it is covered in
    more than one partition.  NumPy keeps the gain sweeps vectorised
    when present; the list fallback computes the same integers.
    """

    def __init__(
        self,
        num_nodes: int,
        num_partitions: int,
        cones: Sequence[Sequence[int]],
        part: Sequence[int],
    ) -> None:
        self.num_partitions = num_partitions
        self.part = list(part)
        if _np is not None:
            self.cones = [_np.array(c, dtype=_np.intp) for c in cones]
            self.counts = _np.zeros((num_nodes, num_partitions), dtype=_np.int32)
            for unit, cone in enumerate(self.cones):
                self.counts[cone, self.part[unit]] += 1
            covered = self.counts > 0
            self.load = [int(x) for x in covered.sum(axis=0)]
            self.unique = int(covered.any(axis=1).sum())
        else:
            self.cones = [list(c) for c in cones]
            self.counts = [[0] * num_partitions for _ in range(num_nodes)]
            for unit, cone in enumerate(self.cones):
                p = self.part[unit]
                for n in cone:
                    self.counts[n][p] += 1
            self.load = [0] * num_partitions
            self.unique = 0
            for row in self.counts:
                covered_any = False
                for p in range(num_partitions):
                    if row[p] > 0:
                        self.load[p] += 1
                        covered_any = True
                if covered_any:
                    self.unique += 1

    # ------------------------------------------------------------------
    @property
    def sum_load(self) -> int:
        return sum(self.load)

    @property
    def replicated(self) -> int:
        return self.sum_load - self.unique

    def leave_new(self, unit: int, target: int) -> Tuple[int, int]:
        """Pin counts of moving ``unit`` from its partition to ``target``:
        ``leave`` nodes would no longer be covered in the source,
        ``new`` nodes become newly covered in the target."""
        p = self.part[unit]
        cone = self.cones[unit]
        if _np is not None:
            col = self.counts[cone]
            leave = int((col[:, p] == 1).sum())
            new = int((col[:, target] == 0).sum())
            return leave, new
        counts = self.counts
        leave = 0
        new = 0
        for n in cone:
            row = counts[n]
            if row[p] == 1:
                leave += 1
            if row[target] == 0:
                new += 1
        return leave, new

    def apply(self, unit: int, target: int, leave: int, new: int) -> None:
        """Move ``unit`` to ``target``, updating counts and loads."""
        p = self.part[unit]
        cone = self.cones[unit]
        if _np is not None:
            self.counts[cone, p] -= 1
            self.counts[cone, target] += 1
        else:
            for n in cone:
                row = self.counts[n]
                row[p] -= 1
                row[target] += 1
        self.load[p] -= leave
        self.load[target] += new
        self.part[unit] = target


def _cluster_cones(
    op_cones: Sequence[Set[int]], similarity: float
) -> List[List[int]]:
    """Greedy agglomerative coarsening: scan cones largest-first and merge
    each into the first cluster whose representative overlaps by at least
    ``similarity`` (Jaccard).  Deterministic; returns clusters as lists of
    item indices (singletons included)."""
    order = sorted(
        range(len(op_cones)), key=lambda i: (-len(op_cones[i]), i)
    )
    clusters: List[List[int]] = []
    representatives: List[Set[int]] = []
    for i in order:
        cone = op_cones[i]
        placed = False
        if cone:
            for c, rep in enumerate(representatives):
                if not rep:
                    continue
                inter = len(cone & rep)
                union = len(cone) + len(rep) - inter
                if union and inter / union >= similarity:
                    clusters[c].append(i)
                    placed = True
                    break
        if not placed:
            clusters.append([i])
            representatives.append(set(cone))
    return clusters


def _run_passes(
    state: _RefineState,
    cost_of,
    admissible,
    imbalance_weight: float,
    max_passes: int,
    stats: RefineStats,
) -> None:
    """FM passes with prefix revert over the units in ``state``.

    Each pass: rebuild the gain buckets, then repeatedly take the best
    admissible move (locking the moved unit) even through plateaus and
    uphill stretches, tracking the best prefix; finally roll back to it.
    Stops when a pass keeps no move or ``max_passes`` is reached.
    """
    num_units = len(state.cones)
    P = state.num_partitions
    for _ in range(max_passes):
        buckets = GainBuckets()
        locked = [False] * num_units
        for unit in range(num_units):
            for target in range(P):
                if target != state.part[unit]:
                    buckets.put(unit, target, *state.leave_new(unit, target))
        cost = cost_of()
        best_cost = cost
        trail: List[Tuple[int, int, int, int]] = []
        best_len = 0
        while len(buckets):
            chosen = None
            chosen_key = None
            cur_max = max(state.load)
            for gain, bucket in buckets.buckets_desc():
                for (unit, target), (leave, new) in bucket.items():
                    if not admissible(gain):
                        continue
                    p = state.part[unit]
                    new_max = max(
                        state.load[r]
                        + (new if r == target else 0)
                        - (leave if r == p else 0)
                        for r in range(P)
                    )
                    total = gain + imbalance_weight * (cur_max - new_max)
                    # Inside a bucket the replication gain ties; prefer the
                    # move that hurts balance least, then the lowest target
                    # partition (the deterministic consolidation direction).
                    key = (total, -target, -unit)
                    if chosen_key is None or key > chosen_key:
                        chosen_key = key
                        chosen = (unit, target, leave, new, total)
                if chosen is not None:
                    break
            if chosen is None:
                break
            unit, target, leave, new, total = chosen
            source = state.part[unit]
            state.apply(unit, target, leave, new)
            cost -= total
            locked[unit] = True
            buckets.discard_unit(unit, P)
            trail.append((unit, source, leave, new))
            if cost < best_cost - 1e-9:
                best_cost = cost
                best_len = len(trail)
            # Refresh stale gains: only moves touching the two affected
            # partitions changed (a unit elsewhere keeps its exact pins).
            for other in range(num_units):
                if locked[other]:
                    continue
                if state.part[other] in (source, target):
                    refresh = (r for r in range(P) if r != state.part[other])
                else:
                    refresh = (r for r in (source, target))
                for r in refresh:
                    buckets.put(other, r, *state.leave_new(other, r))
        # Roll the pass back to its best prefix (swapped pin counts:
        # the nodes the move added are the ones the revert removes).
        for unit, source, leave, new in reversed(trail[best_len:]):
            state.apply(unit, source, new, leave)
        stats.moves_kept += best_len
        stats.pass_costs.append(cost_of())
        if best_len == 0:
            break


def refine_assignment(
    graph: DataflowGraph,
    items: Sequence[Tuple[str, str, int]],
    cones: Dict[ItemKey, Set[int]],
    assignment: Dict[ItemKey, int],
    num_partitions: int,
    max_replication: Optional[float] = None,
    imbalance_weight: float = 1.0,
    max_passes: int = 8,
    cluster_similarity: float = DEFAULT_CLUSTER_SIMILARITY,
) -> Tuple[Dict[ItemKey, int], RefineStats]:
    """Refine a greedy cone ``assignment`` (see module docs).

    Parameters mirror :func:`repro.repcut.partition.partition_graph`:
    ``items`` are the movable ``(kind, name, root)`` cones, ``cones``
    their full fan-in node sets, ``max_replication`` the cap as a
    fraction of ``graph.num_ops`` (``None`` = uncapped), and
    ``imbalance_weight`` the lambda of the cost.  Returns the refined
    assignment plus :class:`RefineStats`; the result is never costlier
    than the seed.
    """
    keys = [(kind, name) for kind, name, _root in items]
    is_op = [node.is_op for node in graph.nodes]
    op_cones = [
        {nid for nid in cones[key] if is_op[nid]} for key in keys
    ]

    clusters = _cluster_cones(op_cones, cluster_similarity)
    unit_cones = [
        sorted(set().union(*(op_cones[i] for i in members)))
        for members in clusters
    ]
    # A cluster inherits the majority seed partition of its members
    # (ties to the lowest index): the greedy seed still decides where
    # every cone starts, coarsening only decides what moves together.
    unit_part: List[int] = []
    for members in clusters:
        votes = [0] * num_partitions
        for i in members:
            votes[assignment[keys[i]]] += 1
        unit_part.append(max(range(num_partitions), key=lambda p: (votes[p], -p)))

    seed_state = _RefineState(
        len(graph.nodes), num_partitions,
        [sorted(c) for c in op_cones],
        [assignment[key] for key in keys],
    )
    ideal = seed_state.unique / num_partitions

    def seed_cost() -> float:
        return seed_state.replicated + imbalance_weight * (
            max(seed_state.load) - ideal
        )

    stats = RefineStats(
        num_units=len(clusters),
        num_clusters=sum(1 for members in clusters if len(members) > 1),
        seed_cost=seed_cost(),
        seed_replicated=seed_state.replicated,
    )

    cap_total = (
        None if max_replication is None
        else (1.0 + max_replication) * graph.num_ops
    )

    state = _RefineState(len(graph.nodes), num_partitions, unit_cones, unit_part)

    def cost_of() -> float:
        return state.replicated + imbalance_weight * (max(state.load) - ideal)

    def admissible(rep_gain: int) -> bool:
        # A positive replication gain always shrinks total assigned ops;
        # anything else must keep the total under the replication cap.
        if rep_gain > 0 or cap_total is None:
            return True
        return state.sum_load - rep_gain <= cap_total

    stats.pass_costs.append(cost_of())
    _run_passes(
        state, cost_of, admissible, imbalance_weight, max_passes, stats
    )

    # Uncoarsen: polish at single-cone granularity from the coarse result.
    if stats.num_clusters:
        item_part = [0] * len(keys)
        for unit, members in enumerate(clusters):
            for i in members:
                item_part[i] = state.part[unit]
        state = _RefineState(
            len(graph.nodes), num_partitions,
            [sorted(c) for c in op_cones], item_part,
        )
        _run_passes(
            state, cost_of, admissible, imbalance_weight, max_passes, stats
        )
        final_part = state.part
    else:
        final_part = state.part  # units == items (in cluster order)
        item_part = [0] * len(keys)
        for unit, members in enumerate(clusters):
            for i in members:
                item_part[i] = final_part[unit]
        final_part = item_part

    stats.final_cost = cost_of()
    stats.final_replicated = state.replicated
    # Hard guarantees: never costlier than the seed, and never above the
    # replication cap unless the seed itself already was.
    exceeds_cap = cap_total is not None and state.sum_load > max(
        cap_total, seed_state.sum_load
    )
    if exceeds_cap or stats.final_cost > stats.seed_cost + 1e-9:
        stats.reverted_to_seed = True
        stats.final_cost = stats.seed_cost
        stats.final_replicated = stats.seed_replicated
        return dict(assignment), stats

    refined = {key: final_part[i] for i, key in enumerate(keys)}
    return refined, stats
