"""Lowering fibertrees onto concrete coordinate/payload arrays.

This implements the array layout of Figure 13 in the paper: each rank of a
tensor is stored as a coordinate list and a payload list, where a payload is
the occupancy of the associated next-level fiber (or the scalar value at the
leaf rank).  The :class:`~repro.tensor.format.TensorFormat` controls which of
those arrays are materialised:

* uncompressed ranks elide the coordinate array (coordinates are implicit in
  array position);
* ranks whose payloads are derivable from context (one-hot fibers, arity
  implied by the operation type, mask leaves) elide the payload array by
  setting ``pbits`` to zero.

Reconstruction of elided payloads requires *occupancy rules*, supplied by the
caller (for the OIM these are defined in :mod:`repro.oim.formats`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .fiber import Fiber
from .format import AUTO, RankFormat, TensorFormat, bits_for_value
from .tensor import Tensor

#: An occupancy rule maps a context (ancestor rank name -> coordinate) to the
#: occupancy of the fiber below the current entry.
OccupancyRule = Callable[[Dict[str, int]], int]

#: A leaf rule maps a context to the scalar value at the leaf.
LeafRule = Callable[[Dict[str, int]], Any]


@dataclass
class LoweredRank:
    """The concrete arrays for one rank of a lowered tensor."""

    name: str
    fmt: RankFormat
    #: Explicit coordinates; ``None`` when the rank is uncompressed or when
    #: ``cbits == 0``.
    coords: Optional[List[int]]
    #: Payloads (occupancies, or leaf values at the last rank); ``None`` when
    #: ``pbits == 0``.
    payloads: Optional[List[int]]
    #: Total number of entries at this rank, including implicit ones.
    num_entries: int
    #: Resolved bit widths after AUTO sizing.
    cbits: int = 0
    pbits: int = 0

    def storage_bits(self) -> int:
        bits = 0
        if self.coords is not None:
            bits += len(self.coords) * self.cbits
        if self.payloads is not None:
            bits += len(self.payloads) * self.pbits
        return bits


@dataclass
class LoweredTensor:
    """A tensor lowered to per-rank coordinate/payload arrays."""

    rank_order: Tuple[str, ...]
    ranks: Dict[str, LoweredRank]
    #: Number of entries in the root fiber.
    root_count: int
    #: Per-rank shapes (needed to reconstruct dense ranks).
    shape: Dict[str, Optional[int]] = field(default_factory=dict)

    def storage_bits(self) -> int:
        """Total storage of all materialised arrays, in bits."""
        return sum(rank.storage_bits() for rank in self.ranks.values())

    def storage_bytes(self) -> int:
        return (self.storage_bits() + 7) // 8

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def to_tensor(
        self,
        occupancy_rules: Optional[Dict[str, OccupancyRule]] = None,
        leaf_rule: Optional[LeafRule] = None,
    ) -> Tensor:
        """Rebuild the fibertree from the arrays.

        ``occupancy_rules[rank]`` supplies the occupancy of the fiber *below*
        entries of ``rank`` whenever that rank's payload array was elided.
        ``leaf_rule`` supplies leaf values when the last rank's payloads were
        elided (for masks this defaults to the constant 1).
        """
        occupancy_rules = occupancy_rules or {}
        if leaf_rule is None:
            leaf_rule = lambda context: 1  # noqa: E731 - mask default
        cursors = {name: 0 for name in self.rank_order}

        def read_fiber(depth: int, count: int, context: Dict[str, int]) -> Fiber:
            name = self.rank_order[depth]
            lowered = self.ranks[name]
            is_leaf = depth == len(self.rank_order) - 1
            fiber = Fiber(shape=self.shape.get(name))
            for position in range(count):
                cursor = cursors[name]
                if lowered.coords is not None:
                    coord = lowered.coords[cursor]
                else:
                    coord = position
                sub_context = dict(context)
                sub_context[name] = coord
                if is_leaf:
                    if lowered.payloads is not None:
                        value = lowered.payloads[cursor]
                    else:
                        value = leaf_rule(sub_context)
                    cursors[name] += 1
                    if value != 0:
                        fiber.set(coord, value)
                    continue
                if lowered.payloads is not None:
                    child_count = lowered.payloads[cursor]
                else:
                    rule = occupancy_rules.get(name)
                    if rule is None:
                        raise ValueError(
                            f"rank {name!r} elides payloads but no occupancy "
                            "rule was supplied"
                        )
                    child_count = rule(sub_context)
                cursors[name] += 1
                child = read_fiber(depth + 1, child_count, sub_context)
                if not child.is_empty():
                    fiber.set(coord, child)
            return fiber

        root = read_fiber(0, self.root_count, {})
        shape = [self.shape.get(name) for name in self.rank_order]
        return Tensor(self.rank_order, shape, root)


def _fiber_dense_length(fiber: Fiber, shape: Optional[int]) -> int:
    """Entry count for an uncompressed fiber: its shape, or the occupied span."""
    if fiber.shape is not None:
        return fiber.shape
    if shape is not None:
        return shape
    coords = fiber.coords()
    return (coords[-1] + 1) if coords else 0


def lower(tensor: Tensor, tensor_format: TensorFormat) -> LoweredTensor:
    """Lower ``tensor`` to arrays according to ``tensor_format``.

    The tensor's rank order must already match the format's rank order; use
    :meth:`Tensor.swizzle` first if it does not (Section 5.1's S-N swizzle).
    """
    if tuple(tensor.rank_names) != tuple(tensor_format.rank_order):
        raise ValueError(
            f"tensor rank order {tensor.rank_names} does not match format "
            f"order {tensor_format.rank_order}; swizzle the tensor first"
        )

    order = tensor_format.rank_order
    num_ranks = len(order)
    coords_by_rank: Dict[str, List[int]] = {name: [] for name in order}
    payloads_by_rank: Dict[str, List[int]] = {name: [] for name in order}
    entries_by_rank: Dict[str, int] = {name: 0 for name in order}

    def visit(fiber: Fiber, depth: int) -> int:
        """Record one fiber's entries; return the entry count recorded."""
        name = order[depth]
        fmt = tensor_format.fmt(name)
        is_leaf = depth == num_ranks - 1
        if fmt.compressed:
            items = list(fiber)
        else:
            length = _fiber_dense_length(fiber, tensor.shape[depth])
            empty: Any = 0 if is_leaf else Fiber()
            items = [(pos, fiber.get(pos, empty)) for pos in range(length)]
        for coord, payload in items:
            entries_by_rank[name] += 1
            coords_by_rank[name].append(coord)
            if is_leaf:
                payloads_by_rank[name].append(payload)
            else:
                child_entries = visit(payload, depth + 1)
                payloads_by_rank[name].append(child_entries)
        return len(items)

    root_count = visit(tensor.root, 0)

    ranks: Dict[str, LoweredRank] = {}
    for name in order:
        fmt = tensor_format.fmt(name)
        all_coords = coords_by_rank[name]
        all_payloads = payloads_by_rank[name]
        cbits = _resolve_bits(fmt.cbits, all_coords)
        pbits = _resolve_bits(fmt.pbits, all_payloads)
        ranks[name] = LoweredRank(
            name=name,
            fmt=fmt,
            coords=list(all_coords) if fmt.stores_coords else None,
            payloads=list(all_payloads) if fmt.stores_payloads else None,
            num_entries=entries_by_rank[name],
            cbits=cbits if fmt.stores_coords else 0,
            pbits=pbits if fmt.stores_payloads else 0,
        )

    shape = {name: tensor.shape[i] for i, name in enumerate(order)}
    return LoweredTensor(order, ranks, root_count, shape)


def _resolve_bits(spec: int | str, values: Sequence[int]) -> int:
    """Resolve an AUTO bit width from the maximum value in ``values``."""
    if spec != AUTO:
        return int(spec)
    numeric = [v for v in values if isinstance(v, int)]
    if not numeric:
        return 0
    return bits_for_value(max(max(numeric), 0))
