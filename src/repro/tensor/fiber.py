"""Fibers: the building block of the fibertree tensor abstraction.

A fiber is an ordered set of ``(coordinate, payload)`` pairs sharing their
higher-level coordinates (Sze et al., adopted by the paper in Section 2.2).
A payload is either a scalar value (at the leaf rank) or a reference to the
next-level fiber (at intermediate ranks).

Fibers carry an optional *shape* (the number of legal coordinates); the
number of coordinates actually present is the *occupancy*.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional, Tuple


class Fiber:
    """An ordered mapping from integer coordinates to payloads.

    Coordinates are kept sorted so that iteration visits them in ascending
    coordinate order, which is the traversal order assumed by the kernels in
    the paper (concordant traversal).
    """

    __slots__ = ("_pairs", "shape")

    def __init__(
        self,
        pairs: Optional[Iterable[Tuple[int, Any]]] = None,
        shape: Optional[int] = None,
    ) -> None:
        self._pairs: dict[int, Any] = {}
        self.shape = shape
        if pairs is not None:
            for coord, payload in pairs:
                self.set(coord, payload)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def set(self, coord: int, payload: Any) -> None:
        """Insert or overwrite the payload at ``coord``."""
        if not isinstance(coord, int):
            raise TypeError(f"fiber coordinates must be ints, got {coord!r}")
        if coord < 0:
            raise ValueError(f"fiber coordinates must be non-negative: {coord}")
        if self.shape is not None and coord >= self.shape:
            raise ValueError(
                f"coordinate {coord} out of range for fiber of shape {self.shape}"
            )
        self._pairs[coord] = payload

    def get(self, coord: int, default: Any = None) -> Any:
        """Return the payload at ``coord`` or ``default`` if empty."""
        return self._pairs.get(coord, default)

    def has(self, coord: int) -> bool:
        return coord in self._pairs

    def delete(self, coord: int) -> None:
        self._pairs.pop(coord, None)

    def coords(self) -> list[int]:
        return sorted(self._pairs)

    def payloads(self) -> list[Any]:
        return [self._pairs[c] for c in self.coords()]

    @property
    def occupancy(self) -> int:
        """Number of coordinates with non-empty payloads (Section 2.2)."""
        return len(self._pairs)

    def is_empty(self) -> bool:
        return not self._pairs

    # ------------------------------------------------------------------
    # Iteration and merge helpers (used by the Einsum interpreter)
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[int, Any]]:
        for coord in self.coords():
            yield coord, self._pairs[coord]

    def __len__(self) -> int:
        return self.occupancy

    def iter_shape(self, empty: Any = None) -> Iterator[Tuple[int, Any]]:
        """Iterate over every coordinate in the shape (dense traversal)."""
        if self.shape is None:
            raise ValueError("cannot densely iterate a fiber without a shape")
        for coord in range(self.shape):
            yield coord, self._pairs.get(coord, empty)

    def intersect(self, other: "Fiber") -> Iterator[Tuple[int, Any, Any]]:
        """Yield ``(coord, a_payload, b_payload)`` where both are non-empty.

        This is the intersection coordinate operator from Section 2.4.
        """
        common = sorted(set(self._pairs) & set(other._pairs))
        for coord in common:
            yield coord, self._pairs[coord], other._pairs[coord]

    def union(self, other: "Fiber") -> Iterator[Tuple[int, Any, Any]]:
        """Yield ``(coord, a_payload, b_payload)`` where either is non-empty.

        Missing payloads are reported as ``None``.  This is the union
        coordinate operator from Section 2.4.
        """
        all_coords = sorted(set(self._pairs) | set(other._pairs))
        for coord in all_coords:
            yield coord, self._pairs.get(coord), other._pairs.get(coord)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, values: Iterable[Any], zero: Any = 0) -> "Fiber":
        """Build a fiber from a dense list, omitting ``zero`` entries.

        The fiber's shape is the length of the list, matching the paper's
        observation that dense tensors explicitly contain every coordinate
        while sparse fibertrees omit empty ones.
        """
        values = list(values)
        fiber = cls(shape=len(values))
        for coord, value in enumerate(values):
            if value != zero:
                fiber.set(coord, value)
        return fiber

    def to_dense(self, empty: Any = 0) -> list[Any]:
        """Expand to a dense list of length ``shape``."""
        if self.shape is None:
            raise ValueError("cannot densify a fiber without a shape")
        dense = [empty] * self.shape
        for coord, payload in self:
            dense[coord] = payload
        return dense

    def map_payloads(self, fn: Callable[[Any], Any]) -> "Fiber":
        """Return a new fiber with ``fn`` applied to every payload."""
        return Fiber(((c, fn(p)) for c, p in self), shape=self.shape)

    def copy(self) -> "Fiber":
        """Shallow copy (payloads are shared, structure is not)."""
        return Fiber(iter(self), shape=self.shape)

    # ------------------------------------------------------------------
    # Equality / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fiber):
            return NotImplemented
        if self.coords() != other.coords():
            return False
        return all(self._pairs[c] == other._pairs[c] for c in self._pairs)

    def __hash__(self) -> int:  # pragma: no cover - fibers are mutable
        raise TypeError("fibers are mutable and unhashable")

    def __repr__(self) -> str:
        pairs = ", ".join(f"{c}: {p!r}" for c, p in self)
        return f"Fiber({{{pairs}}}, shape={self.shape})"
