"""Tensors as fibertrees (Section 2.2 of the paper).

A :class:`Tensor` names its ranks, records their shapes, and stores the data
as a tree of :class:`~repro.tensor.fiber.Fiber` objects.  Rank names follow
the paper's convention of single uppercase names (``M``, ``K``, ``I`` ...),
though any string is accepted.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Optional, Sequence, Tuple

from .fiber import Fiber


class Tensor:
    """A named, shaped fibertree.

    Parameters
    ----------
    rank_names:
        Rank names ordered root-to-leaf (e.g. ``("M", "K")`` for a matrix
        stored row-major).
    shape:
        Optional per-rank shapes, parallel to ``rank_names``.  ``None``
        entries mean "unbounded".
    root:
        Root fiber.  A fresh empty fiber is created when omitted.
    """

    def __init__(
        self,
        rank_names: Sequence[str],
        shape: Optional[Sequence[Optional[int]]] = None,
        root: Optional[Fiber] = None,
    ) -> None:
        if not rank_names:
            raise ValueError("a tensor needs at least one rank")
        if len(set(rank_names)) != len(rank_names):
            raise ValueError(f"duplicate rank names: {rank_names}")
        self.rank_names: Tuple[str, ...] = tuple(rank_names)
        if shape is None:
            shape = [None] * len(rank_names)
        if len(shape) != len(rank_names):
            raise ValueError("shape must be parallel to rank_names")
        self.shape: Tuple[Optional[int], ...] = tuple(shape)
        self.root = root if root is not None else Fiber(shape=self.shape[0])

    # ------------------------------------------------------------------
    # Rank bookkeeping
    # ------------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return len(self.rank_names)

    def rank_index(self, name: str) -> int:
        try:
            return self.rank_names.index(name)
        except ValueError:
            raise KeyError(f"tensor has no rank {name!r}") from None

    def rank_shape(self, name: str) -> Optional[int]:
        return self.shape[self.rank_index(name)]

    # ------------------------------------------------------------------
    # Point access
    # ------------------------------------------------------------------
    def _check_point(self, coords: Sequence[int]) -> None:
        if len(coords) != self.num_ranks:
            raise ValueError(
                f"point {tuple(coords)} has {len(coords)} coordinates; "
                f"tensor has {self.num_ranks} ranks"
            )

    def set(self, coords: Sequence[int], value: Any) -> None:
        """Set the scalar value at a point, creating fibers along the way."""
        self._check_point(coords)
        fiber = self.root
        for level, coord in enumerate(coords[:-1]):
            child = fiber.get(coord)
            if child is None:
                child = Fiber(shape=self.shape[level + 1])
                fiber.set(coord, child)
            fiber = child
        fiber.set(coords[-1], value)

    def get(self, coords: Sequence[int], default: Any = None) -> Any:
        """Return the scalar value at a point or ``default`` if empty."""
        self._check_point(coords)
        fiber = self.root
        for coord in coords[:-1]:
            fiber = fiber.get(coord)
            if fiber is None:
                return default
        return fiber.get(coords[-1], default)

    def points(self) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Iterate ``(coords, value)`` over every non-empty point."""

        def walk(fiber: Fiber, prefix: Tuple[int, ...], depth: int):
            if depth == self.num_ranks - 1:
                for coord, payload in fiber:
                    yield prefix + (coord,), payload
            else:
                for coord, payload in fiber:
                    yield from walk(payload, prefix + (coord,), depth + 1)

        yield from walk(self.root, (), 0)

    @property
    def occupancy(self) -> int:
        """Number of non-empty points (leaf payloads)."""
        return sum(1 for _ in self.points())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        points: Dict[Tuple[int, ...], Any] | Iterable[Tuple[Tuple[int, ...], Any]],
        rank_names: Sequence[str],
        shape: Optional[Sequence[Optional[int]]] = None,
    ) -> "Tensor":
        tensor = cls(rank_names, shape)
        items = points.items() if isinstance(points, dict) else points
        for coords, value in items:
            tensor.set(coords, value)
        return tensor

    @classmethod
    def from_dense(
        cls,
        nested: Any,
        rank_names: Sequence[str],
        zero: Any = 0,
    ) -> "Tensor":
        """Build from nested lists, omitting points equal to ``zero``."""

        def dims(x: Any, depth: int) -> list[int]:
            if depth == 0:
                return []
            return [len(x)] + dims(x[0], depth - 1)

        shape = dims(nested, len(rank_names))
        tensor = cls(rank_names, shape)

        def walk(x: Any, prefix: Tuple[int, ...], depth: int) -> None:
            if depth == len(rank_names):
                if x != zero:
                    tensor.set(prefix, x)
                return
            for coord, sub in enumerate(x):
                walk(sub, prefix + (coord,), depth + 1)

        walk(nested, (), 0)
        return tensor

    def to_dense(self, empty: Any = 0) -> Any:
        """Expand to nested lists; every rank must have a shape."""
        if any(s is None for s in self.shape):
            raise ValueError("cannot densify a tensor with unshaped ranks")

        def build(depth: int) -> Any:
            if depth == self.num_ranks:
                return empty
            return [build(depth + 1) for _ in range(self.shape[depth])]

        dense = build(0)
        for coords, value in self.points():
            target = dense
            for coord in coords[:-1]:
                target = target[coord]
            target[coords[-1]] = value
        return dense

    # ------------------------------------------------------------------
    # Rank reordering ("swizzling", Section 5.1)
    # ------------------------------------------------------------------
    def swizzle(self, new_rank_order: Sequence[str]) -> "Tensor":
        """Return a copy with ranks reordered to ``new_rank_order``.

        This implements the swizzle used in the paper to move from the
        ``[I, S, N, O, R]`` to the ``[I, N, S, O, R]`` rank order for the
        NU kernel and beyond.
        """
        if sorted(new_rank_order) != sorted(self.rank_names):
            raise ValueError(
                f"swizzle order {tuple(new_rank_order)} must be a permutation "
                f"of {self.rank_names}"
            )
        perm = [self.rank_index(name) for name in new_rank_order]
        new_shape = [self.shape[i] for i in perm]
        result = Tensor(new_rank_order, new_shape)
        for coords, value in self.points():
            result.set(tuple(coords[i] for i in perm), value)
        return result

    def copy(self) -> "Tensor":
        return Tensor.from_points(dict(self.points()), self.rank_names, self.shape)

    # ------------------------------------------------------------------
    # Equality / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tensor):
            return NotImplemented
        return (
            self.rank_names == other.rank_names
            and dict(self.points()) == dict(other.points())
        )

    def __repr__(self) -> str:
        return (
            f"Tensor(ranks={self.rank_names}, shape={self.shape}, "
            f"occupancy={self.occupancy})"
        )
