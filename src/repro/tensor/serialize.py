"""JSON (de)serialisation of lowered tensors.

The paper's compiler stores the generated ``OIM`` tensor in JSON files that
the kernel executable loads at runtime (Figure 14).  This module provides the
same interchange: a :class:`~repro.tensor.lowering.LoweredTensor` round-trips
through a plain-JSON document.  Elided arrays are simply absent from the
document, so the on-disk size reflects the chosen format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from .format import RankFormat
from .lowering import LoweredRank, LoweredTensor

FORMAT_VERSION = 1


def to_document(lowered: LoweredTensor) -> Dict[str, Any]:
    """Render a lowered tensor as a JSON-serialisable document."""
    ranks = []
    for name in lowered.rank_order:
        rank = lowered.ranks[name]
        entry: Dict[str, Any] = {
            "name": name,
            "compressed": rank.fmt.compressed,
            "cbits": rank.cbits,
            "pbits": rank.pbits,
            "num_entries": rank.num_entries,
        }
        if rank.coords is not None:
            entry["coords"] = rank.coords
        if rank.payloads is not None:
            entry["payloads"] = rank.payloads
        ranks.append(entry)
    return {
        "version": FORMAT_VERSION,
        "rank_order": list(lowered.rank_order),
        "root_count": lowered.root_count,
        "shape": {k: v for k, v in lowered.shape.items() if v is not None},
        "ranks": ranks,
    }


def from_document(document: Dict[str, Any]) -> LoweredTensor:
    """Rebuild a lowered tensor from a document produced by :func:`to_document`."""
    version = document.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported OIM document version: {version!r}")
    rank_order = tuple(document["rank_order"])
    shape: Dict[str, Any] = {name: None for name in rank_order}
    shape.update(document.get("shape", {}))
    ranks: Dict[str, LoweredRank] = {}
    for entry in document["ranks"]:
        name = entry["name"]
        coords = entry.get("coords")
        payloads = entry.get("payloads")
        fmt = RankFormat(
            compressed=entry["compressed"],
            cbits=entry["cbits"] if coords is not None else 0,
            pbits=entry["pbits"] if payloads is not None else 0,
        )
        ranks[name] = LoweredRank(
            name=name,
            fmt=fmt,
            coords=list(coords) if coords is not None else None,
            payloads=list(payloads) if payloads is not None else None,
            num_entries=entry["num_entries"],
            cbits=entry["cbits"],
            pbits=entry["pbits"],
        )
    return LoweredTensor(rank_order, ranks, document["root_count"], shape)


def dumps(lowered: LoweredTensor, indent: int | None = None) -> str:
    return json.dumps(to_document(lowered), indent=indent)


def loads(text: str) -> LoweredTensor:
    return from_document(json.loads(text))


def save(lowered: LoweredTensor, path: str | Path) -> None:
    Path(path).write_text(dumps(lowered))


def load(path: str | Path) -> LoweredTensor:
    return loads(Path(path).read_text())
