"""Fibertree tensor abstraction (paper Sections 2.2 and 2.5.2).

Public API::

    from repro.tensor import Fiber, Tensor, RankFormat, TensorFormat
    from repro.tensor import lower, LoweredTensor
"""

from .fiber import Fiber
from .format import (
    AUTO,
    RankFormat,
    TensorFormat,
    bits_for_value,
    compressed,
    uncompressed,
)
from .lowering import LoweredRank, LoweredTensor, lower
from .serialize import dumps, load, loads, save
from .tensor import Tensor

__all__ = [
    "AUTO",
    "Fiber",
    "LoweredRank",
    "LoweredTensor",
    "RankFormat",
    "Tensor",
    "TensorFormat",
    "bits_for_value",
    "compressed",
    "dumps",
    "load",
    "loads",
    "lower",
    "save",
    "uncompressed",
]
