"""Per-rank tensor format descriptions (Section 2.5.2 and Figure 6).

TeAAL describes the concrete representation of a tensor with a per-rank
format.  Each rank is either *uncompressed* (array sizes proportional to the
shape, with coordinates implicit in array position, so ``cbits = 0``) or
*compressed* (array sizes proportional to occupancy, with explicit
coordinates).  ``cbits``/``pbits`` give the bit widths of the coordinate and
payload arrays; a width of zero means the corresponding array is elided
entirely (the key compression step of Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

#: Sentinel for "size this field from the maximum value stored in it",
#: matching the paper: "The bit width of each non-zero field is determined
#: offline based on the maximum value for that coordinate or payload array."
AUTO = "auto"


def bits_for_value(value: int) -> int:
    """Minimum number of bits needed to represent ``value`` (>= 1)."""
    if value < 0:
        raise ValueError(f"cannot size bits for negative value {value}")
    return max(1, value.bit_length())


@dataclass(frozen=True)
class RankFormat:
    """Format of one rank of a tensor.

    Parameters
    ----------
    compressed:
        ``True`` for a compressed (``C``) rank, ``False`` for an
        uncompressed (``U``) rank.
    cbits:
        Bit width of the coordinate array.  ``0`` elides the array (always
        the case for uncompressed ranks); :data:`AUTO` sizes it from data.
    pbits:
        Bit width of the payload array.  ``0`` elides the array; payloads
        must then be reconstructible from context (one-hot fibers, arity
        implied by the operation type, mask semantics -- Section 5.1).
    """

    compressed: bool
    cbits: int | str = AUTO
    pbits: int | str = AUTO

    def __post_init__(self) -> None:
        if not self.compressed and self.cbits not in (0,):
            # Uncompressed ranks encode coordinates implicitly by position.
            object.__setattr__(self, "cbits", 0)
        for attr in ("cbits", "pbits"):
            value = getattr(self, attr)
            if value != AUTO and (not isinstance(value, int) or value < 0):
                raise ValueError(f"{attr} must be {AUTO!r} or a non-negative int")

    @property
    def kind(self) -> str:
        return "C" if self.compressed else "U"

    @property
    def stores_coords(self) -> bool:
        return self.compressed and self.cbits != 0

    @property
    def stores_payloads(self) -> bool:
        return self.pbits != 0

    def describe(self) -> str:
        def show(width: int | str) -> str:
            if width == AUTO:
                return "non-zero"
            return str(width)

        return f"format: {self.kind}, cbits: {show(self.cbits)}, pbits: {show(self.pbits)}"


def uncompressed(pbits: int | str = AUTO) -> RankFormat:
    """Convenience constructor for a ``U`` rank."""
    return RankFormat(compressed=False, cbits=0, pbits=pbits)


def compressed(cbits: int | str = AUTO, pbits: int | str = AUTO) -> RankFormat:
    """Convenience constructor for a ``C`` rank."""
    return RankFormat(compressed=True, cbits=cbits, pbits=pbits)


@dataclass
class TensorFormat:
    """A full tensor format: a rank order plus a per-rank :class:`RankFormat`.

    Mirrors the TeAAL format specifications shown in Figures 6 and 12 of the
    paper.
    """

    rank_order: Tuple[str, ...]
    rank_formats: Dict[str, RankFormat] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.rank_order = tuple(self.rank_order)
        missing = [r for r in self.rank_order if r not in self.rank_formats]
        if missing:
            raise ValueError(f"missing RankFormat for ranks: {missing}")
        extra = [r for r in self.rank_formats if r not in self.rank_order]
        if extra:
            raise ValueError(f"RankFormat given for unknown ranks: {extra}")

    def fmt(self, rank: str) -> RankFormat:
        return self.rank_formats[rank]

    def describe(self, tensor_name: str = "T") -> str:
        """Render the YAML-like spec used in the paper's figures."""
        lines = [f"{tensor_name}:", f"  rank-order: [{', '.join(self.rank_order)}]"]
        for rank in self.rank_order:
            lines.append(f"  {rank}: {self.rank_formats[rank].describe()}")
        return "\n".join(lines)

    @classmethod
    def csr(cls, row_rank: str = "M", col_rank: str = "K") -> "TensorFormat":
        """The CSR example of Figure 6: U row rank over a C column rank."""
        return cls(
            rank_order=(row_rank, col_rank),
            rank_formats={
                row_rank: uncompressed(pbits=AUTO),
                col_rank: compressed(cbits=AUTO, pbits=AUTO),
            },
        )
