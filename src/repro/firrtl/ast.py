"""Abstract syntax for the FIRRTL subset accepted by the frontend.

The subset covers what the paper's toolchain consumes after lowering:
ground-typed (``UInt<w>``/``Clock``) ports, wires, registers (with optional
synchronous reset), nodes, connects, module instances, and expressions built
from references, literals, primitive operations, ``mux`` and ``validif``.
Aggregate types and ``when`` blocks are out of scope -- modern HDL flows
lower both away before the stage our compiler consumes (lowered FIRRTL),
as the paper notes for XMR in Section 6.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for FIRRTL expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Ref(Expr):
    """A reference to a port, wire, register, or node.

    Instance ports appear as dotted references (``adder.out``) until
    elaboration flattens them.
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    """An unsigned literal with an explicit width: ``UInt<8>(42)``."""

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"literal width must be positive: {self.width}")
        if not 0 <= self.value < (1 << self.width):
            raise ValueError(
                f"literal {self.value} does not fit in UInt<{self.width}>"
            )

    def __str__(self) -> str:
        return f'UInt<{self.width}>({self.value})'


@dataclass(frozen=True)
class PrimExpr(Expr):
    """A primitive operation: ``add(a, b)``, ``bits(x, 7, 0)`` ..."""

    op: str
    args: Tuple[Expr, ...]
    params: Tuple[int, ...] = ()

    def __str__(self) -> str:
        parts = [str(a) for a in self.args] + [str(p) for p in self.params]
        return f"{self.op}({', '.join(parts)})"


@dataclass(frozen=True)
class Mux(Expr):
    """Conditional select: ``mux(sel, high, low)`` (a select operation)."""

    sel: Expr
    high: Expr
    low: Expr

    def __str__(self) -> str:
        return f"mux({self.sel}, {self.high}, {self.low})"


@dataclass(frozen=True)
class ValidIf(Expr):
    """``validif(cond, value)``; our two-state semantics pass the value."""

    cond: Expr
    value: Expr

    def __str__(self) -> str:
        return f"validif({self.cond}, {self.value})"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Port:
    name: str
    direction: str  # "input" | "output"
    width: int  # 0 encodes Clock / Reset-as-clock-like 1-bit specials
    is_clock: bool = False

    def __str__(self) -> str:
        kind = "Clock" if self.is_clock else f"UInt<{self.width}>"
        return f"{self.direction} {self.name} : {kind}"


@dataclass
class Wire:
    name: str
    width: int


@dataclass
class Reg:
    """A register; ``reset`` and ``init`` are optional (synchronous reset)."""

    name: str
    width: int
    clock: str
    reset: Optional[str] = None
    init: Optional[Expr] = None


@dataclass
class Node:
    name: str
    expr: Expr


@dataclass
class Connect:
    target: str
    expr: Expr


@dataclass
class Instance:
    name: str
    module: str


Statement = Union[Wire, Reg, Node, Connect, Instance]


@dataclass
class Module:
    name: str
    ports: List[Port] = field(default_factory=list)
    statements: List[Statement] = field(default_factory=list)

    def port(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"module {self.name} has no port {name!r}")

    def port_names(self) -> List[str]:
        return [p.name for p in self.ports]


@dataclass
class Circuit:
    name: str
    modules: List[Module] = field(default_factory=list)

    def module(self, name: str) -> Module:
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(f"circuit {self.name} has no module {name!r}")

    @property
    def top(self) -> Module:
        return self.module(self.name)


def walk_exprs(expr: Expr):
    """Yield ``expr`` and all sub-expressions, depth first."""
    yield expr
    if isinstance(expr, PrimExpr):
        for arg in expr.args:
            yield from walk_exprs(arg)
    elif isinstance(expr, Mux):
        yield from walk_exprs(expr.sel)
        yield from walk_exprs(expr.high)
        yield from walk_exprs(expr.low)
    elif isinstance(expr, ValidIf):
        yield from walk_exprs(expr.cond)
        yield from walk_exprs(expr.value)
