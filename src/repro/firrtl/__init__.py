"""FIRRTL frontend: parser, elaboration, primitive ops, reference simulator.

Public API::

    from repro.firrtl import parse, elaborate, ReferenceSimulator
    design = elaborate(parse(firrtl_text))
"""

from . import ast, primops
from .elaborate import ElaborationError, FlatDesign, FlatRegister, elaborate
from .parser import FirrtlSyntaxError, parse, parse_expr_text
from .reference import ReferenceSimulator, run_reference

__all__ = [
    "ElaborationError",
    "FirrtlSyntaxError",
    "FlatDesign",
    "FlatRegister",
    "ReferenceSimulator",
    "ast",
    "elaborate",
    "parse",
    "parse_expr_text",
    "primops",
    "run_reference",
]
