"""Elaboration: instance flattening and width inference.

Turns a parsed :class:`~repro.firrtl.ast.Circuit` into a :class:`FlatDesign`,
the single-module netlist the dataflow-graph builder consumes:

* module instances are inlined recursively, with child signals renamed to
  ``instance.signal`` (matching how lowered FIRRTL flattens hierarchies);
* wires and instance ports are resolved to their single driving expression;
* every signal gets an inferred width, per the FIRRTL width rules;
* connects implicitly truncate or zero-extend to the target's width, which
  is realised by masking at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ast import (
    Circuit,
    Connect,
    Expr,
    Instance,
    Literal,
    Module,
    Mux,
    Node,
    Port,
    PrimExpr,
    Ref,
    Reg,
    ValidIf,
    Wire,
)
from .primops import get_op


class ElaborationError(ValueError):
    """Raised for undriven wires, unknown references, width errors, etc."""


@dataclass
class FlatRegister:
    """A state element of the flattened design."""

    name: str
    width: int
    clock: str
    reset: Optional[str] = None
    init_value: int = 0
    #: The expression computing the next state (the register's sole connect).
    next_expr: Optional[Expr] = None


@dataclass
class FlatDesign:
    """A flattened, width-inferred netlist.

    ``definitions`` maps every combinational signal (node, wire, output,
    instance port) to its driving expression over :class:`Ref` leaves that
    name inputs, registers, or other defined signals.
    """

    name: str
    inputs: Dict[str, int] = field(default_factory=dict)
    clocks: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    registers: Dict[str, FlatRegister] = field(default_factory=dict)
    definitions: Dict[str, Expr] = field(default_factory=dict)
    widths: Dict[str, int] = field(default_factory=dict)

    def width_of(self, name: str) -> int:
        try:
            return self.widths[name]
        except KeyError:
            raise ElaborationError(f"unknown signal {name!r}") from None

    def signal_names(self) -> List[str]:
        """All value-carrying signals: inputs, registers, then definitions."""
        names = list(self.inputs)
        names.extend(self.registers)
        names.extend(self.definitions)
        return names

    def topo_definitions(self) -> List[str]:
        """Defined signals in dependency order (iterative DFS).

        Consumers resolve signals in this order so that per-signal work
        recurses only into one expression tree at a time -- deep def-use
        chains in large designs would otherwise exhaust Python's stack.
        """
        from .ast import Ref, walk_exprs

        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}
        order: List[str] = []

        def deps(name: str) -> List[str]:
            return [
                sub.name
                for sub in walk_exprs(self.definitions[name])
                if isinstance(sub, Ref) and sub.name in self.definitions
            ]

        for root in self.definitions:
            if color.get(root, WHITE) == BLACK:
                continue
            color[root] = GREY
            stack: List[Tuple[str, iter]] = [(root, iter(deps(root)))]
            while stack:
                name, iterator = stack[-1]
                advanced = False
                for dep in iterator:
                    state = color.get(dep, WHITE)
                    if state == GREY:
                        raise ElaborationError(
                            f"combinational cycle through {dep!r}"
                        )
                    if state == WHITE:
                        color[dep] = GREY
                        stack.append((dep, iter(deps(dep))))
                        advanced = True
                        break
                if not advanced:
                    color[name] = BLACK
                    order.append(name)
                    stack.pop()
        return order

    @property
    def num_state_bits(self) -> int:
        return sum(reg.width for reg in self.registers.values())


def _prefix_expr(expr: Expr, prefix: str) -> Expr:
    if isinstance(expr, Ref):
        return Ref(prefix + expr.name)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, PrimExpr):
        return PrimExpr(
            expr.op, tuple(_prefix_expr(a, prefix) for a in expr.args), expr.params
        )
    if isinstance(expr, Mux):
        return Mux(
            _prefix_expr(expr.sel, prefix),
            _prefix_expr(expr.high, prefix),
            _prefix_expr(expr.low, prefix),
        )
    if isinstance(expr, ValidIf):
        return ValidIf(_prefix_expr(expr.cond, prefix), _prefix_expr(expr.value, prefix))
    raise ElaborationError(f"unknown expression node {expr!r}")


@dataclass
class _Flattened:
    """Intermediate flattening state before wire/width resolution."""

    wires: Dict[str, int] = field(default_factory=dict)
    regs: Dict[str, FlatRegister] = field(default_factory=dict)
    nodes: List[Tuple[str, Expr]] = field(default_factory=list)
    connects: Dict[str, Expr] = field(default_factory=dict)


def _flatten(
    circuit: Circuit,
    module: Module,
    prefix: str,
    out: _Flattened,
    depth: int = 0,
) -> None:
    if depth > 32:
        raise ElaborationError(
            f"instance nesting deeper than 32 in {module.name}; recursive design?"
        )
    for statement in module.statements:
        if isinstance(statement, Wire):
            out.wires[prefix + statement.name] = statement.width
        elif isinstance(statement, Reg):
            init_value = 0
            if statement.init is not None:
                if not isinstance(statement.init, Literal):
                    raise ElaborationError(
                        f"regreset init for {statement.name!r} must be a literal"
                    )
                init_value = statement.init.value
            out.regs[prefix + statement.name] = FlatRegister(
                name=prefix + statement.name,
                width=statement.width,
                clock=prefix + statement.clock if prefix else statement.clock,
                reset=(prefix + statement.reset) if statement.reset else None,
                init_value=init_value,
            )
        elif isinstance(statement, Node):
            out.nodes.append(
                (prefix + statement.name, _prefix_expr(statement.expr, prefix))
            )
        elif isinstance(statement, Connect):
            out.connects[prefix + statement.target] = _prefix_expr(
                statement.expr, prefix
            )
        elif isinstance(statement, Instance):
            child = circuit.module(statement.module)
            child_prefix = f"{prefix}{statement.name}."
            # Child ports become wires at the flattened level.
            for port in child.ports:
                out.wires[child_prefix + port.name] = port.width
            _flatten(circuit, child, child_prefix, out, depth + 1)
        else:  # pragma: no cover - parser only emits the above
            raise ElaborationError(f"unknown statement {statement!r}")


def elaborate(circuit: Circuit, top: Optional[str] = None) -> FlatDesign:
    """Flatten ``circuit`` (from its ``top`` module) into a :class:`FlatDesign`."""
    top_module = circuit.module(top) if top else circuit.top
    flattened = _Flattened()
    _flatten(circuit, top_module, "", flattened)

    design = FlatDesign(name=circuit.name)
    for port in top_module.ports:
        if port.direction == "input":
            if port.is_clock:
                design.clocks.append(port.name)
            else:
                design.inputs[port.name] = port.width
                design.widths[port.name] = port.width
        else:
            design.outputs.append(port.name)
            design.widths[port.name] = port.width

    for name, register in flattened.regs.items():
        design.registers[name] = register
        design.widths[name] = register.width

    # Wires (including flattened instance ports) and outputs take their
    # definitions from connects; registers take their next expression.
    for name, width in flattened.wires.items():
        design.widths[name] = width

    clock_names = set(design.clocks)
    clock_aliases: Dict[str, str] = {}
    # Clock-distribution connects (``child.clock <= clock``) may appear in
    # any order, so collect aliases to a fixpoint before resolving.
    pending = dict(flattened.connects)
    changed = True
    while changed:
        changed = False
        for target, expr in list(pending.items()):
            if (
                isinstance(expr, Ref)
                and expr.name in clock_names
                and target not in design.registers
                and target not in design.outputs
            ):
                clock_names.add(target)
                clock_aliases[target] = clock_aliases.get(expr.name, expr.name)
                del pending[target]
                changed = True

    for target, expr in pending.items():
        if target in design.registers:
            design.registers[target].next_expr = expr
        elif target in flattened.wires or target in design.outputs:
            design.definitions[target] = expr
        else:
            raise ElaborationError(f"connect to undeclared target {target!r}")

    # Resolve register clock names through the alias chain to the top-level
    # clock port, so multi-clock domain grouping sees canonical names.
    for register in design.registers.values():
        clock = register.clock
        while clock in clock_aliases:
            clock = clock_aliases[clock]
        register.clock = clock

    for name, expr in flattened.nodes:
        if name in design.definitions:
            raise ElaborationError(f"node {name!r} redefines a connected signal")
        design.definitions[name] = expr

    # Every register must be driven; every wire/output must be driven.
    for name, register in design.registers.items():
        if register.next_expr is None:
            raise ElaborationError(f"register {name!r} has no next-state connect")
    for name in flattened.wires:
        if name not in design.definitions and name not in clock_names:
            raise ElaborationError(f"wire {name!r} is never driven")
    for name in design.outputs:
        if name not in design.definitions:
            raise ElaborationError(f"output {name!r} is never driven")

    _infer_widths(design)
    return design


def _infer_widths(design: FlatDesign) -> None:
    """Fill ``design.widths`` for nodes via the FIRRTL width rules."""
    in_progress: set = set()

    def width_of_signal(name: str) -> int:
        if name in design.widths:
            return design.widths[name]
        if name in in_progress:
            raise ElaborationError(f"combinational width cycle through {name!r}")
        if name not in design.definitions:
            raise ElaborationError(f"reference to undefined signal {name!r}")
        in_progress.add(name)
        width = width_of_expr(design.definitions[name])
        in_progress.discard(name)
        design.widths[name] = width
        return width

    def width_of_expr(expr: Expr) -> int:
        if isinstance(expr, Ref):
            return width_of_signal(expr.name)
        if isinstance(expr, Literal):
            return expr.width
        if isinstance(expr, PrimExpr):
            op = get_op(expr.op)
            arg_widths = [width_of_expr(a) for a in expr.args]
            return op.width_rule(arg_widths, expr.params)
        if isinstance(expr, Mux):
            return max(width_of_expr(expr.high), width_of_expr(expr.low))
        if isinstance(expr, ValidIf):
            return width_of_expr(expr.value)
        raise ElaborationError(f"unknown expression node {expr!r}")

    # Topological order keeps recursion bounded by expression depth.
    for name in design.topo_definitions():
        width_of_signal(name)
