"""A direct-execution reference simulator for flattened designs.

This interpreter walks the expression trees of a
:class:`~repro.firrtl.elaborate.FlatDesign` every cycle.  It is slow and
simple by design: it is the golden model that every RTeAAL kernel, the
Verilator-like backend and the ESSENT-like backend are validated against in
the test suite.
"""

from __future__ import annotations

from typing import Dict, Optional

from .ast import Expr, Literal, Mux, PrimExpr, Ref, ValidIf
from .elaborate import ElaborationError, FlatDesign
from .primops import get_op, mask


class ReferenceSimulator:
    """Cycle-accurate interpreter over the flattened netlist.

    The public interface (``poke``/``peek``/``step``/``reset``) matches the
    higher-level :class:`repro.sim.Simulator` so backends are interchangeable
    in tests.
    """

    def __init__(self, design: FlatDesign) -> None:
        self.design = design
        self.cycle = 0
        self._inputs: Dict[str, int] = {name: 0 for name in design.inputs}
        self._state: Dict[str, int] = {
            name: register.init_value for name, register in design.registers.items()
        }
        self._values: Dict[str, int] = {}
        # Evaluate in dependency order so recursion depth is bounded by
        # single-expression depth, not def-use chain length.
        self._topo_order = design.topo_definitions()

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------
    def poke(self, name: str, value: int) -> None:
        """Drive a top-level input for subsequent cycles."""
        if name not in self._inputs:
            raise KeyError(f"{name!r} is not an input of {self.design.name}")
        self._inputs[name] = mask(value, self.design.inputs[name])

    def peek(self, name: str) -> int:
        """Read any signal's value as of the last evaluation."""
        if name in self._state:
            return self._state[name]
        if name in self._inputs:
            return self._inputs[name]
        self._ensure_evaluated()
        if name in self._values:
            return self._values[name]
        raise KeyError(f"unknown signal {name!r}")

    def reset(self) -> None:
        """Reset all registers to their init values."""
        for name, register in self.design.registers.items():
            self._state[name] = register.init_value
        self._values = {}
        self.cycle = 0

    def step(self, cycles: int = 1) -> None:
        """Advance the design by ``cycles`` clock edges."""
        for _ in range(cycles):
            self._ensure_evaluated()
            next_state: Dict[str, int] = {}
            for name, register in self.design.registers.items():
                if register.reset is not None and self._read(register.reset):
                    next_state[name] = register.init_value
                else:
                    value = self._eval(register.next_expr)
                    next_state[name] = mask(value, register.width)
            self._state = next_state
            self._values = {}
            self.cycle += 1

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _ensure_evaluated(self) -> None:
        if self._values:
            return
        self._values = {}
        for name in self._topo_order:
            self._read(name)

    def _read(self, name: str) -> int:
        if name in self._state:
            return self._state[name]
        if name in self._inputs:
            return self._inputs[name]
        if name in self._values:
            return self._values[name]
        expr = self.design.definitions.get(name)
        if expr is None:
            raise ElaborationError(f"reference to undefined signal {name!r}")
        # Mark in-flight to catch combinational cycles.
        self._values[name] = _IN_FLIGHT
        value = mask(self._eval(expr), self.design.width_of(name))
        self._values[name] = value
        return value

    def _eval(self, expr: Expr) -> int:
        if isinstance(expr, Ref):
            value = self._read(expr.name)
            if value is _IN_FLIGHT:
                raise ElaborationError(
                    f"combinational cycle through {expr.name!r}"
                )
            return value
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, PrimExpr):
            op = get_op(expr.op)
            args = [self._eval(a) for a in expr.args]
            widths = [self._width(a) for a in expr.args]
            out_width = op.width_rule(widths, expr.params)
            return op.evaluate(args, widths, expr.params, out_width)
        if isinstance(expr, Mux):
            return self._eval(expr.high) if self._eval(expr.sel) else self._eval(expr.low)
        if isinstance(expr, ValidIf):
            return self._eval(expr.value)
        raise ElaborationError(f"unknown expression node {expr!r}")

    def _width(self, expr: Expr) -> int:
        if isinstance(expr, Ref):
            return self.design.width_of(expr.name)
        if isinstance(expr, Literal):
            return expr.width
        if isinstance(expr, PrimExpr):
            op = get_op(expr.op)
            widths = [self._width(a) for a in expr.args]
            return op.width_rule(widths, expr.params)
        if isinstance(expr, Mux):
            return max(self._width(expr.high), self._width(expr.low))
        if isinstance(expr, ValidIf):
            return self._width(expr.value)
        raise ElaborationError(f"unknown expression node {expr!r}")


class _InFlight(int):
    """Sentinel marking a signal currently being evaluated."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<in-flight>"


_IN_FLIGHT = _InFlight(-1)


def run_reference(
    design: FlatDesign,
    stimulus: Optional[Dict[str, list]] = None,
    cycles: int = 1,
    watch: Optional[list] = None,
) -> Dict[str, list]:
    """Convenience driver: apply per-cycle stimulus, record watched signals.

    ``stimulus[name][c]`` is poked before cycle ``c``; ``watch`` defaults to
    the design outputs.  Returns ``{signal: [value per cycle]}``.
    """
    simulator = ReferenceSimulator(design)
    watch = list(watch) if watch is not None else list(design.outputs)
    trace: Dict[str, list] = {name: [] for name in watch}
    stimulus = stimulus or {}
    for cycle in range(cycles):
        for name, values in stimulus.items():
            if cycle < len(values):
                simulator.poke(name, values[cycle])
        for name in watch:
            trace[name].append(simulator.peek(name))
        simulator.step()
    return trace
