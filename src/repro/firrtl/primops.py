"""FIRRTL primitive operations: width rules and bit-accurate semantics.

The paper's compiler supports "all FIRRTL primitive operations" in the
``OIM``'s ``N`` rank (Section 6.1).  This module defines those operations for
the UInt subset of FIRRTL that our frontend accepts: each op carries a width
rule (per the FIRRTL specification) and an evaluator over Python ints that
masks results to the computed width.

Values are unsigned integers.  Operations with signed semantics (``sub``,
``neg``) wrap in two's complement at the result width, matching hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple


def mask(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (two's complement wrap)."""
    if width <= 0:
        return 0
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Reinterpret a ``width``-bit unsigned value as two's complement."""
    if width <= 0:
        return 0
    sign_bit = 1 << (width - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


@dataclass(frozen=True)
class PrimOp:
    """One FIRRTL primitive operation.

    ``num_args`` is the number of expression operands and ``num_params`` the
    number of static integer parameters (e.g. ``bits(x, hi, lo)`` has one
    argument and two parameters).
    """

    name: str
    num_args: int
    num_params: int
    #: (arg_widths, params) -> result width
    width_rule: Callable[[Sequence[int], Sequence[int]], int]
    #: (arg_values, arg_widths, params, result_width) -> result value
    evaluate: Callable[[Sequence[int], Sequence[int], Sequence[int], int], int]
    #: True when the op is commutative *and* associative, i.e. reducible in
    #: any order.  Non-commutative reducible ops (sub) still reduce but rely
    #: on the O-rank ordering (Section 4.1).
    commutative: bool = False

    @property
    def arity(self) -> int:
        return self.num_args


def _binary(fn: Callable[[int, int], int]) -> Callable:
    def evaluate(args, widths, params, out_width):
        return mask(fn(args[0], args[1]), out_width)

    return evaluate


def _w_maxp1(widths, params):
    return max(widths) + 1


def _w_max(widths, params):
    return max(widths)


def _w_one(widths, params):
    return 1


def _div(a: int, b: int) -> int:
    # FIRRTL leaves division by zero undefined; we choose 0 like Verilator's
    # x-propagation-free two-state semantics.
    return a // b if b != 0 else 0


def _rem(a: int, b: int) -> int:
    return a % b if b != 0 else 0


def _dshl_width(widths, params):
    # FIRRTL: w(a) + 2^w(b) - 1, clamped to keep toy designs reasonable.
    return widths[0] + min((1 << widths[1]) - 1, 64)


PRIM_OPS: dict[str, PrimOp] = {}


def _register(op: PrimOp) -> PrimOp:
    PRIM_OPS[op.name] = op
    return op


ADD = _register(PrimOp("add", 2, 0, _w_maxp1, _binary(lambda a, b: a + b), commutative=True))
SUB = _register(PrimOp("sub", 2, 0, _w_maxp1, _binary(lambda a, b: a - b)))
MUL = _register(PrimOp("mul", 2, 0, lambda w, p: w[0] + w[1], _binary(lambda a, b: a * b), commutative=True))
DIV = _register(PrimOp("div", 2, 0, lambda w, p: w[0], _binary(_div)))
REM = _register(PrimOp("rem", 2, 0, lambda w, p: min(w[0], w[1]), _binary(_rem)))

LT = _register(PrimOp("lt", 2, 0, _w_one, _binary(lambda a, b: int(a < b))))
LEQ = _register(PrimOp("leq", 2, 0, _w_one, _binary(lambda a, b: int(a <= b))))
GT = _register(PrimOp("gt", 2, 0, _w_one, _binary(lambda a, b: int(a > b))))
GEQ = _register(PrimOp("geq", 2, 0, _w_one, _binary(lambda a, b: int(a >= b))))
EQ = _register(PrimOp("eq", 2, 0, _w_one, _binary(lambda a, b: int(a == b)), commutative=True))
NEQ = _register(PrimOp("neq", 2, 0, _w_one, _binary(lambda a, b: int(a != b)), commutative=True))

AND = _register(PrimOp("and", 2, 0, _w_max, _binary(lambda a, b: a & b), commutative=True))
OR = _register(PrimOp("or", 2, 0, _w_max, _binary(lambda a, b: a | b), commutative=True))
XOR = _register(PrimOp("xor", 2, 0, _w_max, _binary(lambda a, b: a ^ b), commutative=True))

CAT = _register(
    PrimOp(
        "cat",
        2,
        0,
        lambda w, p: w[0] + w[1],
        lambda args, widths, params, ow: mask((args[0] << widths[1]) | args[1], ow),
    )
)

DSHL = _register(
    PrimOp(
        "dshl",
        2,
        0,
        _dshl_width,
        lambda args, widths, params, ow: mask(args[0] << args[1], ow),
    )
)
DSHR = _register(
    PrimOp(
        "dshr",
        2,
        0,
        lambda w, p: w[0],
        lambda args, widths, params, ow: mask(args[0] >> args[1], ow),
    )
)

NOT = _register(
    PrimOp(
        "not",
        1,
        0,
        _w_max,
        lambda args, widths, params, ow: mask(~args[0], ow),
    )
)
NEG = _register(
    PrimOp(
        "neg",
        1,
        0,
        _w_maxp1,
        lambda args, widths, params, ow: mask(-args[0], ow),
    )
)
CVT = _register(
    PrimOp(
        "cvt",
        1,
        0,
        lambda w, p: w[0] + 1,
        lambda args, widths, params, ow: mask(args[0], ow),
    )
)
ANDR = _register(
    PrimOp(
        "andr",
        1,
        0,
        _w_one,
        lambda args, widths, params, ow: int(args[0] == mask(-1, widths[0])),
    )
)
ORR = _register(
    PrimOp(
        "orr",
        1,
        0,
        _w_one,
        lambda args, widths, params, ow: int(args[0] != 0),
    )
)
XORR = _register(
    PrimOp(
        "xorr",
        1,
        0,
        _w_one,
        lambda args, widths, params, ow: bin(args[0]).count("1") & 1,
    )
)
AS_UINT = _register(
    PrimOp(
        "asUInt",
        1,
        0,
        _w_max,
        lambda args, widths, params, ow: mask(args[0], ow),
    )
)
AS_SINT = _register(
    PrimOp(
        "asSInt",
        1,
        0,
        _w_max,
        lambda args, widths, params, ow: mask(args[0], ow),
    )
)

PAD = _register(
    PrimOp(
        "pad",
        1,
        1,
        lambda w, p: max(w[0], p[0]),
        lambda args, widths, params, ow: mask(args[0], ow),
    )
)
SHL = _register(
    PrimOp(
        "shl",
        1,
        1,
        lambda w, p: w[0] + p[0],
        lambda args, widths, params, ow: mask(args[0] << params[0], ow),
    )
)
SHR = _register(
    PrimOp(
        "shr",
        1,
        1,
        lambda w, p: max(w[0] - p[0], 1),
        lambda args, widths, params, ow: mask(args[0] >> params[0], ow),
    )
)
HEAD = _register(
    PrimOp(
        "head",
        1,
        1,
        lambda w, p: p[0],
        lambda args, widths, params, ow: mask(args[0] >> (widths[0] - params[0]), ow),
    )
)
TAIL = _register(
    PrimOp(
        "tail",
        1,
        1,
        lambda w, p: max(w[0] - p[0], 1),
        lambda args, widths, params, ow: mask(args[0], ow),
    )
)
BITS = _register(
    PrimOp(
        "bits",
        1,
        2,
        lambda w, p: p[0] - p[1] + 1,
        lambda args, widths, params, ow: mask(args[0] >> params[1], ow),
    )
)


def get_op(name: str) -> PrimOp:
    try:
        return PRIM_OPS[name]
    except KeyError:
        raise KeyError(f"unknown FIRRTL primitive operation {name!r}") from None


def op_names() -> Tuple[str, ...]:
    return tuple(sorted(PRIM_OPS))
