"""A line-oriented parser for the FIRRTL subset.

FIRRTL is indentation structured, but the lowered subset we accept has a
flat statement list per module, so the parser is line-based: ``circuit`` and
``module`` headers open sections and every other non-blank line is a single
statement.  Comments run from ``;`` to end of line.

Grammar (one statement per line)::

    circuit <Name> :
      module <Name> :
        input  <name> : UInt<w> | Clock
        output <name> : UInt<w>
        wire   <name> : UInt<w>
        reg    <name> : UInt<w>, <clock>
        regreset <name> : UInt<w>, <clock>, <reset>, <init-expr>
        node   <name> = <expr>
        inst   <name> of <Module>
        <target> <= <expr>
        skip

    expr := UInt<w>(value) | mux(e, e, e) | validif(e, e)
          | <primop>(e, ..., const, ...) | <id> | <id>.<id>
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ast import (
    Circuit,
    Connect,
    Expr,
    Instance,
    Literal,
    Module,
    Mux,
    Node,
    Port,
    PrimExpr,
    Ref,
    Reg,
    ValidIf,
    Wire,
)
from .primops import PRIM_OPS


class FirrtlSyntaxError(SyntaxError):
    """Raised with a line number when the input is not in the subset."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<id>[A-Za-z_][A-Za-z0-9_$]*)|(?P<sym><=|=>|[()<>,.=:]))"
)


class _TokenStream:
    """Token cursor over one expression string."""

    def __init__(self, text: str, line_no: int) -> None:
        self.text = text
        self.line_no = line_no
        self.tokens: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if not match or match.end() == pos:
                remaining = text[pos:].strip()
                if not remaining:
                    break
                raise FirrtlSyntaxError(
                    f"cannot tokenise {remaining!r}", line_no, text
                )
            pos = match.end()
            for kind in ("num", "id", "sym"):
                value = match.group(kind)
                if value is not None:
                    self.tokens.append((kind, value))
                    break
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise FirrtlSyntaxError("unexpected end of expression", self.line_no, self.text)
        self.index += 1
        return token

    def expect(self, value: str) -> None:
        kind, text = self.next()
        if text != value:
            raise FirrtlSyntaxError(
                f"expected {value!r}, found {text!r}", self.line_no, self.text
            )

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


def parse_expr_text(text: str, line_no: int = 0) -> Expr:
    """Parse a stand-alone expression string."""
    stream = _TokenStream(text, line_no)
    expr = _parse_expr(stream)
    if not stream.at_end():
        kind, tok = stream.next()
        raise FirrtlSyntaxError(f"trailing token {tok!r}", line_no, text)
    return expr


def _parse_expr(stream: _TokenStream) -> Expr:
    kind, token = stream.next()
    if kind == "num":
        raise FirrtlSyntaxError(
            f"bare integer {token} is not an expression (use UInt<w>({token}))",
            stream.line_no,
            stream.text,
        )
    if kind != "id":
        raise FirrtlSyntaxError(
            f"expected expression, found {token!r}", stream.line_no, stream.text
        )

    if token == "UInt":
        stream.expect("<")
        width = int(stream.next()[1])
        stream.expect(">")
        stream.expect("(")
        value = int(stream.next()[1])
        stream.expect(")")
        return Literal(value, width)

    if token == "mux":
        stream.expect("(")
        sel = _parse_expr(stream)
        stream.expect(",")
        high = _parse_expr(stream)
        stream.expect(",")
        low = _parse_expr(stream)
        stream.expect(")")
        return Mux(sel, high, low)

    if token == "validif":
        stream.expect("(")
        cond = _parse_expr(stream)
        stream.expect(",")
        value = _parse_expr(stream)
        stream.expect(")")
        return ValidIf(cond, value)

    if token in PRIM_OPS and stream.peek() == ("sym", "("):
        op = PRIM_OPS[token]
        stream.expect("(")
        args: List[Expr] = []
        params: List[int] = []
        while True:
            next_token = stream.peek()
            if next_token is None:
                raise FirrtlSyntaxError(
                    "unterminated primop argument list", stream.line_no, stream.text
                )
            if next_token == ("sym", ")"):
                stream.next()
                break
            if next_token[0] == "num":
                params.append(int(stream.next()[1]))
            else:
                args.append(_parse_expr(stream))
            if stream.peek() == ("sym", ","):
                stream.next()
        if len(args) != op.num_args or len(params) != op.num_params:
            raise FirrtlSyntaxError(
                f"{op.name} expects {op.num_args} args and {op.num_params} "
                f"params, found {len(args)} and {len(params)}",
                stream.line_no,
                stream.text,
            )
        return PrimExpr(op.name, tuple(args), tuple(params))

    # Plain or dotted reference.
    name = token
    while stream.peek() == ("sym", "."):
        stream.next()
        field_kind, field = stream.next()
        if field_kind != "id":
            raise FirrtlSyntaxError(
                f"bad field name {field!r}", stream.line_no, stream.text
            )
        name = f"{name}.{field}"
    return Ref(name)


_TYPE_RE = re.compile(r"^\s*(UInt\s*<\s*(\d+)\s*>|Clock|Reset|AsyncReset)\s*$")


def _parse_type(text: str, line_no: int, line: str) -> Tuple[int, bool]:
    """Return ``(width, is_clock)`` for a ground type."""
    match = _TYPE_RE.match(text)
    if not match:
        raise FirrtlSyntaxError(f"unsupported type {text.strip()!r}", line_no, line)
    if match.group(2) is not None:
        return int(match.group(2)), False
    if match.group(1) == "Clock":
        return 1, True
    return 1, False  # Reset / AsyncReset behave as 1-bit signals here.


def parse(text: str) -> Circuit:
    """Parse FIRRTL source text into a :class:`Circuit`."""
    circuit: Optional[Circuit] = None
    module: Optional[Module] = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].rstrip()
        stripped = line.strip()
        if not stripped:
            continue

        head = stripped.split(None, 1)[0]

        if head == "circuit":
            name = _section_name(stripped, "circuit", line_no, line)
            circuit = Circuit(name)
            continue

        if circuit is None:
            raise FirrtlSyntaxError("statement before circuit header", line_no, line)

        if head == "module":
            name = _section_name(stripped, "module", line_no, line)
            module = Module(name)
            circuit.modules.append(module)
            continue

        if module is None:
            raise FirrtlSyntaxError("statement before module header", line_no, line)

        _parse_statement(stripped, module, line_no, line)

    if circuit is None:
        raise FirrtlSyntaxError("no circuit header found", 0, text[:40])
    # Validate the top module exists.
    circuit.top
    return circuit


def _section_name(stripped: str, keyword: str, line_no: int, line: str) -> str:
    body = stripped[len(keyword):].strip()
    if body.endswith(":"):
        body = body[:-1].strip()
    if not body or not re.match(r"^[A-Za-z_][A-Za-z0-9_$]*$", body):
        raise FirrtlSyntaxError(f"bad {keyword} name", line_no, line)
    return body


def _parse_statement(stripped: str, module: Module, line_no: int, line: str) -> None:
    head = stripped.split(None, 1)[0]

    if head in ("input", "output"):
        rest = stripped[len(head):].strip()
        name, _, type_text = rest.partition(":")
        name = name.strip()
        width, is_clock = _parse_type(type_text, line_no, line)
        module.ports.append(Port(name, head, width, is_clock))
        return

    if head == "wire":
        rest = stripped[len(head):].strip()
        name, _, type_text = rest.partition(":")
        width, _ = _parse_type(type_text, line_no, line)
        module.statements.append(Wire(name.strip(), width))
        return

    if head == "reg":
        rest = stripped[len(head):].strip()
        name, _, remainder = rest.partition(":")
        parts = [p.strip() for p in remainder.split(",")]
        if len(parts) != 2:
            raise FirrtlSyntaxError(
                "reg expects ': UInt<w>, <clock>'", line_no, line
            )
        width, _ = _parse_type(parts[0], line_no, line)
        module.statements.append(Reg(name.strip(), width, clock=parts[1]))
        return

    if head == "regreset":
        rest = stripped[len(head):].strip()
        name, _, remainder = rest.partition(":")
        parts = [p.strip() for p in remainder.split(",", 3)]
        if len(parts) != 4:
            raise FirrtlSyntaxError(
                "regreset expects ': UInt<w>, <clock>, <reset>, <init>'",
                line_no,
                line,
            )
        width, _ = _parse_type(parts[0], line_no, line)
        init = parse_expr_text(parts[3], line_no)
        module.statements.append(
            Reg(name.strip(), width, clock=parts[1], reset=parts[2], init=init)
        )
        return

    if head == "node":
        rest = stripped[len(head):].strip()
        name, _, expr_text = rest.partition("=")
        if not expr_text:
            raise FirrtlSyntaxError("node expects '= <expr>'", line_no, line)
        module.statements.append(
            Node(name.strip(), parse_expr_text(expr_text, line_no))
        )
        return

    if head == "inst":
        match = re.match(r"^inst\s+(\w+)\s+of\s+(\w+)$", stripped)
        if not match:
            raise FirrtlSyntaxError("inst expects 'inst <name> of <Module>'", line_no, line)
        module.statements.append(Instance(match.group(1), match.group(2)))
        return

    if head == "skip":
        return

    if "<=" in stripped:
        target, _, expr_text = stripped.partition("<=")
        module.statements.append(
            Connect(target.strip(), parse_expr_text(expr_text, line_no))
        )
        return

    raise FirrtlSyntaxError(f"unrecognised statement", line_no, line)
