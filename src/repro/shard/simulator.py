"""The sharded batched simulator: B lanes × P partitions per cycle.

:class:`ShardedBatchSimulator` composes the two scaling axes this
reproduction has built so far: RepCut-style partitioning
(:mod:`repro.repcut`) decouples the design into P independent
per-cycle kernels, and lane batching (:mod:`repro.batch`) advances B
stimulus seeds through each kernel at once.  Every cycle is one
bulk-synchronous round: P workers each run their partition's batched
kernel, then the Register Update Map synchronisation -- Cascade 2's
``LI[c+1] = LI[c,I] . RUM`` Einsum -- exchanges the updated registers'
*lane vectors* between partitions, one row per register instead of one
scalar per (register, lane).

The surface stays scalar-compatible (``poke`` / ``peek`` / ``step`` /
``step_domain`` / ``reset`` / ``snapshot`` / ``restore``), with ``peek``
returning B-lane lists exactly like :class:`~repro.batch.BatchSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..firrtl.primops import mask
from ..graph.dfg import DataflowGraph
from ..kernels.config import KernelConfig
from ..sim.simulator import DesignLike, compile_graph
from ..repcut.partition import (
    PartitionResult,
    missing_signal_error,
    partition_graph,
)
from ..repcut.rum import RegisterUpdateMap, build_rum
from .executors import BaseExecutor, ExportRows, make_executor

LaneValues = Union[int, Sequence[int]]


@dataclass
class ShardSnapshot:
    """A checkpoint of all P partitions plus the exchange history.

    Partition states are executor-native (cheap in-process snapshots for
    serial/thread, portable exported planes for process workers), so a
    snapshot restores only onto a simulator using the same executor.
    """

    partition_states: List[object]
    cycle: int
    last_synced: Dict[str, Tuple[int, ...]]
    executor: str
    lanes: int
    #: The cut itself (per-partition owned registers): two simulators of
    #: the same design can partition it differently (greedy vs refined,
    #: different ``max_replication``), and partition states are only
    #: meaningful on the cut that produced them.
    cut: Tuple[Tuple[str, ...], ...] = ()
    #: Host-side poked input rows at snapshot time (the ``poke_lane``
    #: read-modify-write base); restored alongside the partition states.
    poked_rows: Dict[str, Tuple[int, ...]] = field(default_factory=dict)


@dataclass
class ShardLaneState:
    """One lane's portable state: per-partition slot values (plain ints,
    backend-agnostic) plus the lane's poked-input values.  Produced by
    :meth:`ShardedBatchSimulator.export_lane`."""

    partition_values: List[List[int]]
    cut: Tuple[Tuple[str, ...], ...] = ()
    poked: Dict[str, int] = field(default_factory=dict)


class ShardedBatchSimulator:
    """B-lane batched simulation sharded over P RepCut partitions.

    Parameters
    ----------
    design:
        FIRRTL text, a :class:`FlatDesign`, or a (pre-optimised)
        :class:`DataflowGraph` -- anything
        :func:`repro.sim.compile_graph` accepts.
    lanes:
        Number of independent stimulus lanes (B).
    num_partitions:
        RepCut partition count (P); one worker per partition.  Empty
        partitions (no owned register, no output) are pruned, so this is
        an upper bound and :attr:`num_partitions` reports the effective
        count.
    partitioner:
        Partitioning strategy: ``"greedy"`` (balanced cone assignment)
        or ``"refined"`` (greedy seed + replication-capped KL/FM
        refinement, :mod:`repro.repcut.refine`) -- on heavily shared
        designs the refined cut does ~P× less total work.
    max_replication:
        Replication cap for the refined partitioner, as a fraction of
        the design's ops (``None`` = uncapped).
    preserve_signals:
        Keep named intermediate signals observable when compiling from
        source (a pre-compiled :class:`DataflowGraph` is used as-is).
    kernel:
        Per-partition kernel configuration (as
        :class:`~repro.batch.BatchSimulator`).
    backend:
        Value-plane storage request, resolved *per partition* -- sharding
        a wide design leaves most partitions on the single-row u64 fast
        path with only the wide partitions on split-limb u64xN planes;
        the RUM exchange itself is storage-agnostic (lane rows cross as
        plain ints), so mixed-backend partitions compose freely.
    executor:
        ``"serial"`` (deterministic reference), ``"thread"``,
        ``"process"`` (one worker process per partition; pickled lane
        buffers, or shared-memory lane planes when eligible), or
        ``"socket"`` (partitions on ``shard-worker`` hosts over TCP);
        see :mod:`repro.shard.executors` / :mod:`repro.shard.remote`.
    hosts:
        Socket executor only: ``"host[:port]"`` strings (or
        ``(host, port)`` pairs) of running ``shard-worker`` endpoints,
        assigned partitions round-robin.  ``None`` auto-spawns loopback
        workers owned by this simulator.
    shm_planes:
        Process executor only: ``None`` (default) uses shared-memory
        lane planes whenever every partition fits the u64 plane,
        ``True`` requires them (raising when ineligible), ``False``
        forces the pickled-pipe exchange.  The live choice is reported
        by :attr:`transport`.
    """

    def __init__(
        self,
        design: Union[DesignLike, DataflowGraph],
        lanes: int = 8,
        num_partitions: int = 2,
        kernel: Union[str, KernelConfig] = "PSU",
        backend: str = "auto",
        executor: str = "serial",
        partitioner: str = "greedy",
        max_replication: Optional[float] = None,
        preserve_signals: bool = False,
        hosts: Optional[Sequence] = None,
        shm_planes: Optional[bool] = None,
    ) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        graph = compile_graph(design, preserve_signals=preserve_signals)
        self.lanes = lanes
        self.result: PartitionResult = partition_graph(
            graph, num_partitions, strategy=partitioner,
            max_replication=max_replication,
        )
        self._design_signals = set(graph.signal_map)
        if self.result.cache_digest:
            # The cut came through the artifact cache; the derived RUM is
            # keyed by the same digest, so a warm process skips its
            # reader/writer sweep too.
            from ..serve.artifacts import cache_through

            self.rum: RegisterUpdateMap = cache_through(
                "rum", self.result.cache_digest,
                lambda: build_rum(self.result),
            )
        else:
            self.rum = build_rum(self.result)
        self._routes = self.rum.routes()
        exports_map = self.rum.exports_of()
        # Empty partitions were pruned, so worker count follows the
        # *effective* partition list, not the requested P.
        self._exports = [
            exports_map[i] for i in range(len(self.result.partitions))
        ]
        self.executor: BaseExecutor = make_executor(
            executor, self.result.partitions, lanes, kernel, backend,
            self._exports, routes=self._routes, hosts=hosts,
            shm_planes=shm_planes,
        )
        self._closed = False

        # Input fan-out and signal homes, as the scalar RepCut simulator.
        self._known_inputs = set(graph.inputs)
        self._input_widths = {
            name: graph.nodes[nid].width for name, nid in graph.inputs.items()
        }
        # Masked poked rows, host-side: lane-targeted pokes read-modify-
        # write against this record (the executor protocol is row-wise).
        self._poked_rows: Dict[str, Tuple[int, ...]] = {}
        self._input_sinks: Dict[str, List[int]] = {}
        for index, partition in enumerate(self.result.partitions):
            for name in partition.graph.inputs:
                if name in partition.external_registers:
                    continue
                self._input_sinks.setdefault(name, []).append(index)
        self._signal_home: Dict[str, int] = {}
        for index, partition in enumerate(self.result.partitions):
            for name in partition.graph.signal_map:
                self._signal_home.setdefault(name, index)
        for name, home in self.rum.writer.items():
            self._signal_home[name] = home
        self._signal_widths = {
            name: graph.nodes[nid].width
            for name, nid in graph.signal_map.items()
            if name in self._signal_home
        }
        self._clock_domains = sorted(
            {clock for p in self.result.partitions for clock in p.clock_domains}
        )

        self.cycle = 0
        self._last_synced: Dict[str, Tuple[int, ...]] = {}
        self.sync_sent = 0
        self.sync_suppressed = 0
        # Replica inputs start at zero; registers may not.  Prime them.
        self._exchange(self.executor.collect())

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------
    def poke(self, name: str, value: LaneValues) -> None:
        """Drive an input in every partition reading it: a scalar
        broadcasts across lanes, a sequence is per-lane."""
        sinks = self._input_sinks.get(name)
        if not sinks and name not in self._known_inputs:
            raise KeyError(f"{name!r} is not an input of any partition")
        width = self._input_widths[name]
        if isinstance(value, int):
            row = (mask(value, width),) * self.lanes
        else:
            row = tuple(mask(int(v), width) for v in value)
            if len(row) != self.lanes:
                raise ValueError(
                    f"poke({name!r}) got {len(row)} values for "
                    f"{self.lanes} lanes"
                )
        self._poked_rows[name] = row
        # Sinks get the masked, length-checked row (not the raw caller
        # value): a one-shot iterable was consumed building it, and the
        # partitions skip redundant re-masking work.
        lane_values = list(row)
        for index in sinks or ():
            self.executor.poke(index, name, lane_values)

    def poke_lane(self, name: str, lane: int, value: int) -> None:
        """Drive an input in a single lane; the other lanes keep their
        most recently poked values (zero if never poked)."""
        if name not in self._known_inputs:
            raise KeyError(f"{name!r} is not an input of any partition")
        if not 0 <= lane < self.lanes:
            raise IndexError(
                f"poke_lane({name!r}): lane {lane} out of range for "
                f"{self.lanes} lanes"
            )
        row = list(self._poked_rows.get(name, (0,) * self.lanes))
        row[lane] = mask(int(value), self._input_widths[name])
        self.poke(name, row)

    def peek(self, name: str) -> List[int]:
        """All B lanes of a signal, from its home partition."""
        home = self._signal_home.get(name)
        if home is None:
            raise missing_signal_error(
                name, self._design_signals, self.result.partitions
            )
        return self.executor.peek(home, name)

    def peek_lane(self, name: str, lane: int) -> int:
        return self.peek(name)[lane]

    def step(self, cycles: int = 1) -> None:
        """Advance all clock domains of all lanes by ``cycles`` edges:
        P parallel partition steps, then one RUM exchange per edge."""
        for _ in range(cycles):
            self._exchange(self.executor.step_collect())
            self.cycle += 1

    def step_domain(self, clock: str) -> None:
        """Advance a single clock domain by one edge (Section 6.2).

        Partitions owning no register in ``clock`` sit the edge out; the
        differential exchange then suppresses their unchanged exports.
        """
        if clock not in self._clock_domains:
            raise KeyError(
                f"unknown clock domain {clock!r}; domains: "
                f"{self._clock_domains}"
            )
        self._exchange(self.executor.step_collect(clock))
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Alias for :meth:`step`, for testbench readability."""
        self.step(cycles)

    def reset(self) -> None:
        """Reset every partition (poked inputs survive, as the scalar
        simulators) and refresh all replicas unconditionally."""
        self.executor.reset()
        self._last_synced.clear()
        self._exchange(self.executor.collect())
        self.cycle = 0

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> ShardSnapshot:
        """Checkpoint all partitions plus the exchange history."""
        return ShardSnapshot(
            partition_states=self.executor.snapshot(),
            cycle=self.cycle,
            last_synced=dict(self._last_synced),
            executor=self.executor.name,
            lanes=self.lanes,
            cut=self._cut(),
            poked_rows=dict(self._poked_rows),
        )

    def _cut(self) -> Tuple[Tuple[str, ...], ...]:
        return tuple(
            tuple(p.owned_registers) for p in self.result.partitions
        )

    def restore(self, snapshot: ShardSnapshot) -> None:
        """Return to a :meth:`snapshot` checkpoint (same executor,
        partitioning, and lane count)."""
        if snapshot.executor != self.executor.name:
            raise ValueError(
                f"snapshot was taken under the {snapshot.executor!r} "
                f"executor, this simulator runs {self.executor.name!r}"
            )
        if snapshot.lanes != self.lanes:
            raise ValueError(
                f"snapshot has {snapshot.lanes} lanes, simulator has "
                f"{self.lanes}"
            )
        if len(snapshot.partition_states) != self.num_partitions:
            raise ValueError(
                f"snapshot has {len(snapshot.partition_states)} partitions, "
                f"simulator has {self.num_partitions}"
            )
        if snapshot.cut and snapshot.cut != self._cut():
            raise ValueError(
                "snapshot was taken under a different partitioning (the "
                "register->partition cut differs, e.g. another partitioner= "
                "strategy or max_replication); partition states are only "
                "restorable onto the cut that produced them"
            )
        self.executor.restore(snapshot.partition_states)
        self.cycle = snapshot.cycle
        self._last_synced = dict(snapshot.last_synced)
        self._poked_rows = dict(snapshot.poked_rows)

    # ------------------------------------------------------------------
    # Per-lane state transfer (session checkout / preemption)
    # ------------------------------------------------------------------
    def export_lane(self, lane: int) -> ShardLaneState:
        """Portable state of a single lane: per-partition value planes
        plus that lane's poked-input values.

        Unlike :meth:`snapshot` (whole-simulator, executor-native), lane
        states are plain Python ints and move between simulators of the
        same design with different executors, backends, or kernels -- the
        unit of session preemption and migration in :mod:`repro.serve`.
        """
        if not 0 <= lane < self.lanes:
            raise IndexError(
                f"export_lane: lane {lane} out of range for "
                f"{self.lanes} lanes"
            )
        return ShardLaneState(
            partition_values=self.executor.export_lane(lane),
            cut=self._cut(),
            poked={row_name: row[lane]
                   for row_name, row in self._poked_rows.items()},
        )

    def import_lane(self, lane: int, state: ShardLaneState) -> None:
        """Load an :meth:`export_lane` state into one lane (the other
        lanes are untouched).  Requires the same partition cut."""
        if not 0 <= lane < self.lanes:
            raise IndexError(
                f"import_lane: lane {lane} out of range for "
                f"{self.lanes} lanes"
            )
        if state.cut and state.cut != self._cut():
            raise ValueError(
                "lane state was exported under a different partitioning "
                "(the register->partition cut differs); re-export from a "
                "simulator with the same cut"
            )
        if len(state.partition_values) != self.num_partitions:
            raise ValueError(
                f"lane state has {len(state.partition_values)} partitions, "
                f"simulator has {self.num_partitions}"
            )
        self.executor.import_lane(lane, state.partition_values)
        for name, value in state.poked.items():
            self.poke_lane(name, lane, value)
        # Partitions step *before* the cycle's exchange, so replicas of
        # the imported lane's registers must be refreshed now, not at the
        # next exchange.  Drop the differential history and re-prime, as
        # the constructor and reset() do.
        self._last_synced.clear()
        self._exchange(self.executor.collect())

    # ------------------------------------------------------------------
    # The batched RUM exchange
    # ------------------------------------------------------------------
    def _exchange(self, exports: List[ExportRows]) -> None:
        """Propagate updated register lane-rows via the RUM.

        Differential exchange (Box 1), lane-vectorised: a register's row
        is sent to its readers only when *any* lane changed.  The first
        exchange (no history) sends everything.
        """
        merged: Dict[str, List[int]] = {}
        for rows in exports:
            merged.update(rows)
        updates: List[ExportRows] = [
            {} for _ in range(len(self.result.partitions))
        ]
        for name, _writer, readers in self._routes:
            if name not in merged:
                # The executor handled this row natively.  A name with
                # sync history was suppressed transport-side (the shm
                # change mask drops quiescent rows before they reach the
                # coordinator); one without history never travels here
                # at all (host-local socket routes).
                if name in self._last_synced:
                    self.sync_suppressed += len(readers)
                continue
            row = tuple(merged[name])
            if self._last_synced.get(name) == row:
                self.sync_suppressed += len(readers)
                continue
            self._last_synced[name] = row
            self.sync_sent += len(readers)
            lane_values = list(row)
            for reader in readers:
                updates[reader][name] = lane_values
        self.executor.apply_sync(updates)

    # ------------------------------------------------------------------
    # Introspection / stats
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self.result.partitions)

    @property
    def clock_domains(self) -> List[str]:
        return list(self._clock_domains)

    @property
    def inputs(self) -> List[str]:
        """Names of the design's pokeable inputs."""
        return sorted(self._known_inputs)

    @property
    def signals(self) -> List[str]:
        return sorted(self._signal_widths)

    @property
    def unpoked_inputs(self) -> set:
        """Inputs never driven since construction; dumped as ``x`` by
        :class:`~repro.sim.VcdWriter` before the first edge."""
        return self._known_inputs - set(self._poked_rows)

    @property
    def signal_widths(self) -> Dict[str, int]:
        """``{signal: width}`` of every peekable signal (waveforms)."""
        return dict(self._signal_widths)

    @property
    def transport(self) -> str:
        """How lane rows move during the exchange: ``"local"``,
        ``"pipe"``, ``"shm"``, or ``"socket"``."""
        return getattr(self.executor, "transport", "local")

    @property
    def replication_overhead(self) -> float:
        """Fraction of extra ops the partitioning replicated."""
        return self.result.replication_overhead

    def sync_traffic_per_cycle(self) -> int:
        """Register *rows* exchanged per cycle without differential
        exchange (each row carries B lane values)."""
        return self.rum.total_transfers_per_cycle

    @property
    def differential_savings(self) -> float:
        """Fraction of synchronisation traffic suppressed so far."""
        total = self.sync_sent + self.sync_suppressed
        return self.sync_suppressed / total if total else 0.0

    @property
    def activity_stats(self):
        """Aggregate :class:`~repro.kernels.activity.ActivityStats` over
        all partitions, or ``None`` when partitions run plain kernels.

        With ``kernel="activity"`` each partition gets per-partition
        settle-skipping for free: a partition's replica inputs *are* its
        leaves, and the differential RUM exchange leaves unchanged rows
        unpoked, so a quiescent partition's walk full-skips -- the
        exchange history feeds the activity fiber.  The merged counters
        make that skipping observable per shard; ``cycles`` reports the
        max over partitions (they advance in lockstep), the work counters
        sum.
        """
        from ..kernels.activity import merge_stats

        parts = self.executor.activity_stats()
        if all(part is None for part in parts):
            return None
        return merge_stats(parts)

    def describe_partitions(self) -> List[str]:
        """Per-partition ``backend/style`` strings."""
        return self.executor.describe()

    @property
    def step_total_seconds(self) -> float:
        """Measured kernel time summed over all partitions and cycles."""
        return self.executor.step_total_seconds

    @property
    def step_max_seconds(self) -> float:
        """Measured barrier critical path: sum over cycles of the slowest
        partition's kernel time (the per-cycle cost on >= P free cores)."""
        return self.executor.step_max_seconds

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down worker threads/processes (idempotent)."""
        if not self._closed:
            self._closed = True
            self.executor.close()

    def __enter__(self) -> "ShardedBatchSimulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ShardedBatchSimulator(lanes={self.lanes}, "
            f"partitions={self.num_partitions}, "
            f"executor={self.executor.name}, cycle={self.cycle})"
        )
