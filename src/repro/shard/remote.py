"""Socket transport for the shard worker protocol: partitions on hosts.

The process executor's ``(op, args)`` pipe protocol is already
transport-agnostic; this module puts it on a wire.  A *shard worker* is
a TCP server (``repro.experiments shard-worker`` or
:func:`serve_shard_worker`) hosting N partition
:class:`~repro.batch.BatchSimulator` instances for one coordinator at a
time; :class:`SocketExecutor` is the coordinator side, speaking
length-prefixed pickle frames and plugging into
:class:`~repro.shard.ShardedBatchSimulator` as ``executor="socket"``.

Three things make it a distributed executor rather than a pipe with a
port number:

* **Cache-keyed graph shipping** -- setup sends each partition graph as
  a ``pgraph`` artifact-cache reference first (a few hundred bytes); the
  worker resolves it from the named root or its own configured cache,
  and only a genuine cache miss makes the coordinator reconnect with the
  inline pickled graph.
* **A static exchange schedule** -- computed once from the RUM routes at
  construction.  Each worker knows which of its export rows have
  *off-host* readers (only those rows ever cross the wire) and which
  routes are entirely host-local (applied worker-side, without a
  round-trip through the coordinator).
* **Overlapped export streaming** -- during ``step`` a worker sends the
  export frame for partition i as soon as it settles, while partition
  i+1 is still stepping; the coordinator's recv barrier sits at sync
  time, and the per-partition kernel durations still feed the
  ``step_max_seconds`` critical-path accounting.

Frames are pickled Python objects on a length prefix.  Pickle over a
socket means *trusted links only* -- the worker executes whatever the
coordinator sends (and vice versa); run it on loopback, a private
cluster network, or an authenticated tunnel, never on an open port.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from ..batch.simulator import BatchSimulator
from ..kernels.config import KernelConfig
from ..repcut.partition import Partition
from .executors import (
    BaseExecutor,
    ExportRows,
    ProcessExecutor,
    _is_pgraph_cache_miss,
    _mp_context,
    _require_count,
    _step_one,
)

_LEN = struct.Struct(">I")
#: Refuse frames above this size -- a corrupt length prefix must not
#: make a worker try to allocate gigabytes.  Lane rows are int lists;
#: even a wide design at B=1024 stays far below this.
MAX_FRAME = 256 << 20
#: Default TCP port for `shard-worker` when none is given.
DEFAULT_PORT = 9555


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise ConnectionError("shard socket closed mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: object) -> None:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME:
        raise ValueError(f"frame of {len(blob)} bytes exceeds MAX_FRAME")
    sock.sendall(_LEN.pack(len(blob)) + blob)


def recv_frame(sock: socket.socket) -> object:
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME:
        raise ConnectionError(
            f"frame length {length} exceeds MAX_FRAME -- corrupt stream?"
        )
    return pickle.loads(_recv_exact(sock, length))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _resolve_worker_graph(ref):
    """Resolve a setup graph reference on the worker host.

    ``("graph", g)`` is the inline fallback.  ``("cache", root, digest)``
    is tried against the named root first and then against the worker's
    own configured artifact cache (a remote host pre-seeded with the
    same content-addressed entries resolves coordinator refs without a
    shared filesystem); a miss in both raises the diagnostic the
    coordinator's retry logic keys on.
    """
    kind, *payload = ref
    if kind == "graph":
        return payload[0]
    root, digest = payload
    from ..serve.artifacts import ArtifactCache, get_cache

    graph = ArtifactCache(root).get("pgraph", digest)
    if graph is None:
        local = get_cache()
        if local is not None and str(local.root) != str(root):
            graph = local.get("pgraph", digest)
    if graph is None:
        raise RuntimeError(
            f"pgraph cache entry {digest[:12]} missing from {root}"
        )
    return graph


def _serve_connection(sock: socket.socket) -> None:
    """One coordinator session: setup handshake, then the op loop."""
    try:
        op, spec = recv_frame(sock)
    except (ConnectionError, EOFError, OSError):
        return
    try:
        if op != "setup":
            raise ValueError(f"expected setup frame, got {op!r}")
        lanes = spec["lanes"]
        sims = [
            BatchSimulator(
                _resolve_worker_graph(ref), lanes=lanes,
                kernel=spec["kernel"], backend=spec["backend"],
                optimize_graph=False,
            )
            for ref in spec["graphs"]
        ]
        exports: List[List[str]] = [list(n) for n in spec["exports"]]
        report: List[List[str]] = [list(n) for n in spec["report"]]
        #: Host-local routes: (writer_local, name, (reader_locals...)).
        local_routes = list(spec["routes"])
    except Exception:
        try:
            send_frame(sock, ("err", traceback.format_exc()))
        except OSError:
            pass
        return
    send_frame(
        sock, ("ok", [f"{s.backend}/{s.kernel.style}" for s in sims])
    )

    def rows_of(index: int) -> ExportRows:
        sim = sims[index]
        return {
            name: sim.peek_row(name, settle=False)
            for name in exports[index]
        }

    def self_apply(rows_by_local: List[ExportRows]) -> None:
        for writer, name, readers in local_routes:
            row = rows_by_local[writer][name]
            for reader in readers:
                sims[reader].poke_row(name, row)

    while True:
        try:
            op, args = recv_frame(sock)
        except (ConnectionError, EOFError, OSError):
            return
        try:
            result = None
            if op == "close":
                send_frame(sock, ("ok", None))
                return
            if op == "step":
                # Stream each partition's off-host export rows as soon
                # as it settles -- the coordinator overlaps this recv
                # with the other hosts' compute; the trailing "done"
                # frame is the per-host barrier.
                rows_by_local = []
                for i in range(len(sims)):
                    start = time.perf_counter()
                    _step_one(sims[i], args)
                    rows = rows_of(i)
                    duration = time.perf_counter() - start
                    rows_by_local.append(rows)
                    send_frame(sock, (
                        "part", i,
                        {name: rows[name] for name in report[i]},
                        duration,
                    ))
                self_apply(rows_by_local)
                send_frame(sock, ("done", None))
                continue
            if op == "collect":
                rows_by_local = [rows_of(i) for i in range(len(sims))]
                self_apply(rows_by_local)
                result = [
                    {name: rows_by_local[i][name] for name in report[i]}
                    for i in range(len(sims))
                ]
            elif op == "sync":
                for local_index, rows in args.items():
                    for name, row in rows.items():
                        sims[local_index].poke_row(name, row)
            elif op == "poke":
                local_index, name, values = args
                sims[local_index].poke(name, values)
            elif op == "peek":
                local_index, name = args
                result = sims[local_index].peek(name)
            elif op == "reset":
                for sim in sims:
                    sim.reset()
            elif op == "snapshot":
                result = [sim.export_state() for sim in sims]
            elif op == "restore":
                for local_index, state in args.items():
                    sims[local_index].import_state(*state)
            elif op == "export_lane":
                result = [sim.export_lane(args) for sim in sims]
            elif op == "import_lane":
                lane, states = args
                for local_index, state in states.items():
                    sims[local_index].import_lane(lane, state)
            elif op == "activity_stats":
                result = [sim.activity_stats for sim in sims]
            else:
                raise ValueError(f"unknown shard worker command {op!r}")
            send_frame(sock, ("ok", result))
        except Exception:
            try:
                send_frame(sock, ("err", traceback.format_exc()))
            except OSError:
                return


def serve_shard_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    announce=None,
    max_sessions: Optional[int] = None,
) -> None:
    """Host shard partitions for coordinators, one session at a time.

    Binds ``host:port`` (``port=0`` picks a free port, reported through
    ``announce(port)``), then serves coordinator sessions sequentially:
    each session is one executor's lifetime, and a fresh executor can
    reconnect to the same worker after the previous one closed or died.
    ``max_sessions`` bounds the loop for tests and one-shot smoke runs.
    """
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen(8)
        if announce is not None:
            announce(server.getsockname()[1])
        served = 0
        while max_sessions is None or served < max_sessions:
            conn, _peer = server.accept()
            served += 1
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                _serve_connection(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
    finally:
        server.close()


def _local_worker_main(conn) -> None:
    """Entry point of an auto-spawned loopback worker process."""
    serve_shard_worker(
        "127.0.0.1", 0,
        announce=lambda port: (conn.send(port), conn.close()),
    )


def spawn_local_workers(count: int):
    """Spawn ``count`` loopback worker processes; returns (hosts, procs).

    The coordinator-side convenience behind ``executor="socket"`` with
    no ``hosts=``: each worker binds an ephemeral 127.0.0.1 port and
    announces it back over a pipe before accepting sessions.
    """
    ctx = _mp_context()
    hosts: List[str] = []
    procs = []
    try:
        for _ in range(count):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_local_worker_main, args=(child,), daemon=True
            )
            proc.start()
            child.close()
            procs.append(proc)
            if not parent.poll(30):
                raise RuntimeError(
                    "local shard worker failed to announce its port"
                )
            hosts.append(f"127.0.0.1:{parent.recv()}")
            parent.close()
    except Exception:
        for proc in procs:
            proc.terminate()
        raise
    return hosts, procs


def worker_cli(argv: Optional[Sequence[str]] = None) -> int:
    """``repro.experiments shard-worker``: host partitions on this box."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.experiments shard-worker",
        description="Serve shard partitions to socket coordinators "
        "(trusted links only: frames are pickled objects).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port (default {DEFAULT_PORT}; 0 picks "
                        "a free port and prints it)")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache root for resolving pgraph "
                        "refs pre-seeded on this host")
    parser.add_argument("--sessions", type=int, default=None,
                        help="exit after serving this many coordinator "
                        "sessions (default: serve forever)")
    args = parser.parse_args(argv)
    if args.cache_dir:
        from ..serve.artifacts import configure_cache

        configure_cache(args.cache_dir)

    def announce(port: int) -> None:
        print(f"shard-worker listening on {args.host}:{port}", flush=True)

    try:
        serve_shard_worker(args.host, args.port, announce=announce,
                           max_sessions=args.sessions)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
def _parse_host(spec) -> Tuple[str, int]:
    if isinstance(spec, (tuple, list)):
        host, port = spec
        return str(host), int(port)
    text = str(spec)
    if ":" in text:
        host, _, port = text.rpartition(":")
        return host, int(port)
    return text, DEFAULT_PORT


class SocketExecutor(BaseExecutor):
    """Partitions spread over shard-worker hosts, round-robin.

    ``hosts=None`` auto-spawns loopback workers (one per partition, up
    to :data:`LOCAL_WORKER_CAP`) and reaps them on close; explicit hosts
    are ``"host[:port]"`` strings or ``(host, port)`` pairs naming
    already-running ``shard-worker`` processes.  Partition *i* lives on
    host ``i % len(hosts)``, and the static exchange schedule derived
    from the RUM routes keeps host-local traffic off the wire entirely.
    """

    name = "socket"
    transport = "socket"
    connect_timeout = 10.0
    #: Per-frame receive timeout during normal operation: generous (a
    #: heavy partition step is slow), but bounded so a wedged worker
    #: surfaces as a diagnostic error instead of a hang.
    op_timeout = 600.0
    close_timeout = 5.0
    LOCAL_WORKER_CAP = 4

    def __init__(
        self,
        partitions: Sequence[Partition],
        lanes: int,
        kernel,
        backend: str,
        exports: Sequence[Sequence[str]],
        routes: Sequence[Tuple[str, int, Tuple[int, ...]]] = (),
        hosts: Optional[Sequence] = None,
    ) -> None:
        kernel_arg = kernel.name if isinstance(kernel, KernelConfig) else kernel
        self._partitions = len(partitions)
        self._procs = []
        self._socks: List[Optional[socket.socket]] = []
        if hosts is None:
            hosts, self._procs = spawn_local_workers(
                min(len(partitions), self.LOCAL_WORKER_CAP) or 1
            )
        if not hosts:
            raise ValueError("socket executor needs at least one host")
        self._addresses = [_parse_host(h) for h in hosts]
        count = len(self._addresses)
        #: Global partition index -> host index, and the inverse table.
        self._host_of = [i % count for i in range(len(partitions))]
        self._locals: List[List[int]] = [[] for _ in range(count)]
        local_index: Dict[int, int] = {}
        for p, h in enumerate(self._host_of):
            local_index[p] = len(self._locals[h])
            self._locals[h].append(p)

        # The static exchange schedule: host-local legs of each route
        # are applied worker-side; rows whose readers are all co-hosted
        # with the writer never cross the wire.
        self._self_applied: List[set] = [set() for _ in partitions]
        local_routes: List[List[Tuple[int, str, Tuple[int, ...]]]] = [
            [] for _ in range(count)
        ]
        remote_needed: List[set] = [set() for _ in partitions]
        for name, writer, readers in routes:
            writer_host = self._host_of[writer]
            co_hosted = tuple(
                local_index[r] for r in readers
                if self._host_of[r] == writer_host
            )
            if co_hosted:
                local_routes[writer_host].append(
                    (local_index[writer], name, co_hosted)
                )
                for r in readers:
                    if self._host_of[r] == writer_host:
                        self._self_applied[r].add(name)
            if any(self._host_of[r] != writer_host for r in readers):
                remote_needed[writer].add(name)
        if routes:
            report = [
                [n for n in names if n in remote_needed[p]]
                for p, names in enumerate(exports)
            ]
        else:
            # No schedule supplied: every export row goes through the
            # coordinator (the degenerate but always-correct plan).
            report = [list(names) for names in exports]

        self._styles: List[str] = [""] * len(partitions)
        try:
            for h, address in enumerate(self._addresses):
                members = self._locals[h]
                spec = {
                    "lanes": lanes,
                    "kernel": kernel_arg,
                    "backend": backend,
                    "graphs": [
                        ProcessExecutor._graph_ref(partitions[p])
                        for p in members
                    ],
                    "exports": [list(exports[p]) for p in members],
                    "report": [report[p] for p in members],
                    "routes": local_routes[h],
                }
                styles = self._handshake(
                    h, spec, [partitions[p].graph for p in members]
                )
                for p, style in zip(members, styles):
                    self._styles[p] = style
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _label(self, h: int) -> str:
        host, port = self._addresses[h]
        return f"{host}:{port} (partitions {self._locals[h]})"

    def _connect(self, h: int) -> socket.socket:
        sock = socket.create_connection(
            self._addresses[h], timeout=self.connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.op_timeout)
        return sock

    def _handshake(self, h: int, spec: dict, graphs) -> List[str]:
        """Connect and set up host ``h``, cache refs first.

        Only the ``pgraph cache entry ... missing`` failure reconnects
        with inline graphs; any other worker-side error (a genuine
        compile failure) propagates from the first attempt.
        """
        while True:
            sock = self._connect(h)
            try:
                send_frame(sock, ("setup", spec))
                status, payload = recv_frame(sock)
            except (ConnectionError, EOFError, OSError) as exc:
                sock.close()
                raise RuntimeError(
                    f"shard worker {self._label(h)} failed during setup "
                    f"({type(exc).__name__}: {exc})"
                ) from exc
            if status == "ok":
                while len(self._socks) <= h:
                    self._socks.append(None)
                self._socks[h] = sock
                return payload
            sock.close()
            can_retry = any(ref[0] == "cache" for ref in spec["graphs"])
            if can_retry and _is_pgraph_cache_miss(payload):
                spec = dict(spec)
                spec["graphs"] = [("graph", g) for g in graphs]
                continue
            raise RuntimeError(
                f"shard worker {self._label(h)} failed:\n{payload}"
            )

    def _send(self, h: int, frame) -> None:
        sock = self._socks[h]
        try:
            send_frame(sock, frame)
        except (ConnectionError, BrokenPipeError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {self._label(h)} is gone "
                f"({type(exc).__name__}: {exc}); close() this executor "
                "and build a fresh one"
            ) from exc

    def _recv(self, h: int):
        try:
            return recv_frame(self._socks[h])
        except (ConnectionError, EOFError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {self._label(h)} died mid-command "
                f"({type(exc).__name__}: {exc}); close() this executor "
                "and build a fresh one"
            ) from exc

    def _recv_ok(self, h: int):
        frame = self._recv(h)
        if frame[0] == "ok":
            return frame[1]
        if frame[0] == "err":
            raise RuntimeError(
                f"shard worker {self._label(h)} failed:\n{frame[1]}"
            )
        raise RuntimeError(
            f"shard worker {self._label(h)}: unexpected frame {frame[0]!r}"
        )

    def _call(self, h: int, op: str, args=None):
        self._send(h, (op, args))
        return self._recv_ok(h)

    def _broadcast(self, op: str, args=None) -> List[object]:
        for h in range(len(self._addresses)):
            self._send(h, (op, args))
        return [self._recv_ok(h) for h in range(len(self._addresses))]

    def _gather(self, op: str, args=None) -> List[object]:
        """Broadcast an op whose reply is one payload per local
        partition; reassemble into global partition order."""
        replies = self._broadcast(op, args)
        out: List[object] = [None] * self._partitions
        for h, payload in enumerate(replies):
            for local_i, p in enumerate(self._locals[h]):
                out[p] = payload[local_i]
        return out

    def _scatter(self, op: str, per_partition) -> None:
        """Send per-partition payloads host-wise and await the acks."""
        _require_count(self, op, len(per_partition), self._partitions)
        frames: List[Dict[int, object]] = [
            {} for _ in range(len(self._addresses))
        ]
        for p, payload in enumerate(per_partition):
            h = self._host_of[p]
            local_i = self._locals[h].index(p)
            frames[h][local_i] = payload
        for h in range(len(self._addresses)):
            self._send(h, (op, frames[h]))
        for h in range(len(self._addresses)):
            self._recv_ok(h)

    # ------------------------------------------------------------------
    def poke(self, index: int, name: str, value) -> None:
        h = self._host_of[index]
        local_i = self._locals[h].index(index)
        self._call(h, "poke", (local_i, name, value))

    def peek(self, index: int, name: str) -> List[int]:
        h = self._host_of[index]
        local_i = self._locals[h].index(index)
        return self._call(h, "peek", (local_i, name))

    def collect(self) -> List[ExportRows]:
        return self._gather("collect")

    def step_collect(self, clock: Optional[str] = None) -> List[ExportRows]:
        for h in range(len(self._addresses)):
            self._send(h, ("step", clock))
        exports: List[ExportRows] = [{} for _ in range(self._partitions)]
        durations = [0.0] * self._partitions
        for h in range(len(self._addresses)):
            while True:
                frame = self._recv(h)
                tag = frame[0]
                if tag == "done":
                    break
                if tag == "part":
                    _, local_i, rows, duration = frame
                    p = self._locals[h][local_i]
                    exports[p] = rows
                    durations[p] = duration
                elif tag == "err":
                    raise RuntimeError(
                        f"shard worker {self._label(h)} failed mid-step:\n"
                        f"{frame[1]}"
                    )
                else:
                    raise RuntimeError(
                        f"shard worker {self._label(h)}: unexpected frame "
                        f"{tag!r} during step"
                    )
        self._account(durations)
        return exports

    def apply_sync(self, updates: Sequence[ExportRows]) -> None:
        _require_count(self, "apply_sync", len(updates), self._partitions)
        frames: List[Dict[int, ExportRows]] = [
            {} for _ in range(len(self._addresses))
        ]
        for p, rows in enumerate(updates):
            filtered = {
                name: row for name, row in rows.items()
                if name not in self._self_applied[p]
            }
            if filtered:
                h = self._host_of[p]
                frames[h][self._locals[h].index(p)] = filtered
        pending = [h for h, frame in enumerate(frames) if frame]
        for h in pending:
            self._send(h, ("sync", frames[h]))
        for h in pending:
            self._recv_ok(h)

    def reset(self) -> None:
        self._broadcast("reset")

    def snapshot(self) -> List[object]:
        return self._gather("snapshot")

    def restore(self, states: Sequence[object]) -> None:
        self._scatter("restore", list(states))

    def export_lane(self, lane: int) -> List[List[int]]:
        return self._gather("export_lane", lane)

    def import_lane(self, lane: int, states: Sequence[Sequence[int]]) -> None:
        _require_count(self, "import_lane", len(states), self._partitions)
        frames: List[Dict[int, object]] = [
            {} for _ in range(len(self._addresses))
        ]
        for p, state in enumerate(states):
            h = self._host_of[p]
            frames[h][self._locals[h].index(p)] = state
        for h in range(len(self._addresses)):
            self._send(h, ("import_lane", (lane, frames[h])))
        for h in range(len(self._addresses)):
            self._recv_ok(h)

    def activity_stats(self) -> List[object]:
        return self._gather("activity_stats")

    def describe(self) -> List[str]:
        return list(self._styles)

    def close(self) -> None:
        for sock in self._socks:
            if sock is None:
                continue
            try:
                sock.settimeout(self.close_timeout)
                send_frame(sock, ("close", None))
                recv_frame(sock)
            except (ConnectionError, EOFError, OSError, ValueError):
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._socks = []
        for proc in self._procs:
            proc.join(timeout=self.close_timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
            if proc.is_alive():  # pragma: no cover - unkillable worker
                proc.kill()
        self._procs = []
