"""Sharded batched simulation: B lanes × P partitions on parallel workers.

This package composes the repository's two scaling axes:

* :mod:`repro.repcut` partitions the dataflow graph RepCut-style, so
  each partition updates a disjoint register set with no intra-cycle
  dependencies (replicated fan-in cones buy the decoupling);
* :mod:`repro.batch` vectorises each partition's kernel across B
  independent stimulus lanes.

:class:`ShardedBatchSimulator` runs one lane-vectorised
:class:`~repro.batch.BatchSimulator` per partition and realises the
per-cycle RUM synchronisation (Cascade 2's ``LI[c+1] = LI[c,I] . RUM``)
as batched lane-vector exchanges -- one row per crossing register per
cycle, whatever B is.  A pluggable executor layer chooses how the P
per-partition kernels run each cycle::

    from repro.shard import ShardedBatchSimulator

    sim = ShardedBatchSimulator(
        firrtl_text, lanes=32, num_partitions=4, executor="process",
    )
    sim.poke("enable", 1)            # broadcasts across lanes
    sim.step(100)
    print(sim.peek("count"))         # -> list of 32 ints
    sim.close()                      # or use it as a context manager

Executors: ``serial`` (in-process, deterministic reference), ``thread``
(shared-memory thread pool), ``process`` (one ``multiprocessing`` worker
per partition; pickled lane buffers over pipes, or zero-copy
``multiprocessing.shared_memory`` lane planes whenever every partition
fits the u64 plane -- the configuration that buys real wall-clock
parallelism; see ``BENCH_shard.json``), and ``socket`` (partitions
spread round-robin over ``shard-worker`` TCP hosts, with a static
RUM-derived exchange schedule that keeps host-local rows off the wire;
:mod:`repro.shard.remote`).  The
``partitioner=`` knob picks the cut: ``"greedy"`` (balanced cone
assignment) or ``"refined"`` (replication-capped KL/FM refinement,
:mod:`repro.repcut.refine` -- ~0.1% replication on rocket-1 at P=2
versus ~97% greedy), with ``max_replication=`` as the explicit cap.  All four are
bit-exact with the scalar :class:`~repro.sim.Simulator` lane by lane;
``tests/test_shard.py`` asserts lockstep equivalence across executors,
partition counts, and designs, including multi-clock ``step_domain``,
and ``tests/test_shard_remote.py`` adds worker fault injection and the
loopback socket topology.
"""

from .executors import (
    EXECUTORS,
    BaseExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from .simulator import ShardLaneState, ShardSnapshot, ShardedBatchSimulator

__all__ = [
    "EXECUTORS",
    "BaseExecutor",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardLaneState",
    "ShardSnapshot",
    "ShardedBatchSimulator",
    "SocketExecutor",
    "ThreadExecutor",
    "make_executor",
    "serve_shard_worker",
    "spawn_local_workers",
]


def __getattr__(name):
    # SocketExecutor and the worker server import lazily: plain
    # serial/thread/process use never pays the socket module import.
    if name in ("SocketExecutor", "serve_shard_worker",
                "spawn_local_workers"):
        from . import remote

        return getattr(remote, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
