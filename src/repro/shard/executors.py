"""Pluggable executors: P partition workers per cycle, one barrier each.

The sharded simulator's bulk-synchronous schedule needs a small command
set per partition -- poke, step-and-collect-exports, apply-sync, peek,
reset, checkpoint.  Three executors realise it:

* :class:`SerialExecutor` -- every partition stepped in-process, in
  index order.  The deterministic reference: zero concurrency, zero IPC,
  bit-exact with the others by construction.
* :class:`ThreadExecutor` -- a ``concurrent.futures`` thread pool steps
  the partitions concurrently.  Same address space (lane rows never
  leave the process); throughput is GIL-bound for the Python-level walk
  loops but the executor exists as the shared-memory rung of the ladder
  and for NumPy builds that release the GIL.
* :class:`ProcessExecutor` -- one ``multiprocessing`` worker process per
  partition, each hosting its own lane-vectorised
  :class:`~repro.batch.BatchSimulator` built from the pickled partition
  graph.  Commands travel over pipes; lane rows cross as plain int lists
  (pickled lane buffers).  This is the executor that actually buys
  wall-clock parallelism for heavy partitions.

All three expose the same interface, so the sharded simulator's exchange
logic is written once.  The per-cycle protocol is two phases: broadcast
``step`` to every worker, gather each worker's export rows (its owned
registers that other partitions read), then scatter the per-reader sync
updates.  That is Cascade 2's ``LI[c+1] = LI[c,I] . RUM`` realised as
batched lane-vector exchanges.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, List, Optional, Sequence

from ..batch.simulator import BatchSimulator
from ..kernels.config import KernelConfig
from ..repcut.partition import Partition

EXECUTORS = ("serial", "thread", "process")

#: One partition's exported register rows: ``{register: [lane values]}``.
ExportRows = Dict[str, List[int]]


def _make_partition_sim(
    partition: Partition, lanes: int, kernel, backend: str
) -> BatchSimulator:
    # Partition graphs come out of partition_graph already optimised;
    # re-optimising could eliminate the replica inputs the sync needs.
    return BatchSimulator(
        partition.graph,
        lanes=lanes,
        kernel=kernel,
        backend=backend,
        optimize_graph=False,
    )


def _step_one(sim: BatchSimulator, clock: Optional[str]) -> None:
    """One edge on one partition: all domains, or one domain if present.

    A partition owning no register in ``clock`` simply sits the edge out;
    its combinational logic settles lazily at the next observation.
    """
    if clock is None:
        sim.step()
    elif clock in sim.clock_domains:
        sim.step_domain(clock)


class BaseExecutor:
    """The command set the sharded simulator drives (see module docs).

    Executors also keep two measured step-time accumulators:
    ``step_total_seconds`` (sum of every partition's kernel time) and
    ``step_max_seconds`` (sum over cycles of the *slowest* partition's
    time -- the barrier critical path, i.e. what a host with >= P free
    cores pays per cycle).
    """

    name = "abstract"
    step_total_seconds: float = 0.0
    step_max_seconds: float = 0.0

    def _account(self, durations: Sequence[float]) -> None:
        self.step_total_seconds += sum(durations)
        self.step_max_seconds += max(durations, default=0.0)

    def poke(self, index: int, name: str, value) -> None:
        raise NotImplementedError

    def peek(self, index: int, name: str) -> List[int]:
        raise NotImplementedError

    def collect(self) -> List[ExportRows]:
        """Every partition's current export rows, without stepping."""
        raise NotImplementedError

    def step_collect(self, clock: Optional[str] = None) -> List[ExportRows]:
        """Advance every partition one edge and gather export rows."""
        raise NotImplementedError

    def apply_sync(self, updates: Sequence[ExportRows]) -> None:
        """Refresh replica inputs: ``updates[i]`` goes to partition i."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def snapshot(self) -> List[object]:
        raise NotImplementedError

    def restore(self, states: Sequence[object]) -> None:
        raise NotImplementedError

    def export_lane(self, lane: int) -> List[List[int]]:
        """One lane's per-partition slot-value columns (portable ints)."""
        raise NotImplementedError

    def import_lane(self, lane: int, states: Sequence[Sequence[int]]) -> None:
        """Load one lane into every partition from ``export_lane`` output."""
        raise NotImplementedError

    def activity_stats(self) -> List[object]:
        """Per-partition :class:`~repro.kernels.activity.ActivityStats`
        (``None`` entries for plain kernels) -- the settle-skipping
        observability surface when partitions run activity kernels."""
        raise NotImplementedError

    def describe(self) -> List[str]:
        """Per-partition ``backend/style`` strings (reporting only)."""
        raise NotImplementedError

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# In-process executors
# ----------------------------------------------------------------------
class SerialExecutor(BaseExecutor):
    """Deterministic in-process reference: partitions step in index order."""

    name = "serial"

    def __init__(
        self,
        partitions: Sequence[Partition],
        lanes: int,
        kernel,
        backend: str,
        exports: Sequence[Sequence[str]],
    ) -> None:
        self.exports = [list(names) for names in exports]
        self.sims = [
            _make_partition_sim(p, lanes, kernel, backend) for p in partitions
        ]

    def poke(self, index: int, name: str, value) -> None:
        self.sims[index].poke(name, value)

    def peek(self, index: int, name: str) -> List[int]:
        return self.sims[index].peek(name)

    def _exports_of(self, index: int) -> ExportRows:
        sim = self.sims[index]
        # Exported names are register state slots: valid post-commit
        # without settling, so the exchange never pays an extra comb pass.
        return {
            name: sim.peek_row(name, settle=False)
            for name in self.exports[index]
        }

    def collect(self) -> List[ExportRows]:
        return [self._exports_of(i) for i in range(len(self.sims))]

    def step_collect(self, clock: Optional[str] = None) -> List[ExportRows]:
        results = []
        durations = []
        for index, sim in enumerate(self.sims):
            start = time.perf_counter()
            _step_one(sim, clock)
            results.append(self._exports_of(index))
            durations.append(time.perf_counter() - start)
        self._account(durations)
        return results

    def apply_sync(self, updates: Sequence[ExportRows]) -> None:
        for sim, rows in zip(self.sims, updates):
            for name, row in rows.items():
                sim.poke_row(name, row)

    def reset(self) -> None:
        for sim in self.sims:
            sim.reset()

    def snapshot(self) -> List[object]:
        return [sim.snapshot() for sim in self.sims]

    def restore(self, states: Sequence[object]) -> None:
        for sim, state in zip(self.sims, states):
            sim.restore(state)

    def export_lane(self, lane: int) -> List[List[int]]:
        return [sim.export_lane(lane) for sim in self.sims]

    def import_lane(self, lane: int, states: Sequence[Sequence[int]]) -> None:
        for sim, state in zip(self.sims, states):
            sim.import_lane(lane, state)

    def activity_stats(self) -> List[object]:
        return [sim.activity_stats for sim in self.sims]

    def describe(self) -> List[str]:
        return [f"{sim.backend}/{sim.kernel.style}" for sim in self.sims]


class ThreadExecutor(SerialExecutor):
    """Thread-pool barrier step; everything else as the serial executor.

    Each worker thread touches only its own partition simulator, and the
    barrier in :meth:`step_collect` serialises against the main thread's
    pokes/syncs, so no locking is needed.
    """

    name = "thread"

    def __init__(self, partitions, lanes, kernel, backend, exports) -> None:
        super().__init__(partitions, lanes, kernel, backend, exports)
        from concurrent.futures import ThreadPoolExecutor

        self._pool = ThreadPoolExecutor(
            max_workers=len(self.sims), thread_name_prefix="shard"
        )

    def step_collect(self, clock: Optional[str] = None) -> List[ExportRows]:
        def run(index: int):
            start = time.perf_counter()
            _step_one(self.sims[index], clock)
            exports = self._exports_of(index)
            return exports, time.perf_counter() - start

        results = list(self._pool.map(run, range(len(self.sims))))
        self._account([duration for _, duration in results])
        return [exports for exports, _ in results]

    def close(self) -> None:
        self._pool.shutdown()


# ----------------------------------------------------------------------
# Process-pool executor
# ----------------------------------------------------------------------
def _resolve_graph_ref(graph_ref):
    """A worker-side graph reference: ``("graph", g)`` carries the pickled
    partition graph itself; ``("cache", root, digest)`` names a ``pgraph``
    entry in the :mod:`repro.serve` artifact cache the worker loads
    locally -- the spawn pipe then ships a few hundred bytes instead of
    the whole graph.  A missing/corrupt cache entry raises (the parent
    falls back to respawning with the inline form)."""
    kind, *payload = graph_ref
    if kind == "graph":
        return payload[0]
    root, digest = payload
    from ..serve.artifacts import ArtifactCache

    graph = ArtifactCache(root).get("pgraph", digest)
    if graph is None:
        raise RuntimeError(
            f"pgraph cache entry {digest[:12]} missing from {root}"
        )
    return graph


def _shard_worker_main(conn, graph_ref, lanes, kernel, backend, export_names):
    """One worker process: host a partition's BatchSimulator over a pipe.

    Replies ``("ok", payload)`` or ``("err", traceback)`` to every
    command; the first message is the construction handshake carrying the
    resolved ``backend/style`` string.
    """
    try:
        sim = BatchSimulator(
            _resolve_graph_ref(graph_ref), lanes=lanes, kernel=kernel,
            backend=backend, optimize_graph=False,
        )
    except Exception:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", f"{sim.backend}/{sim.kernel.style}"))
    while True:
        try:
            op, args = conn.recv()
        except (EOFError, OSError):
            break
        try:
            result = None
            if op == "close":
                conn.send(("ok", None))
                break
            if op == "step":
                start = time.perf_counter()
                _step_one(sim, args)
                exports = {
                    name: sim.peek_row(name, settle=False)
                    for name in export_names
                }
                result = (exports, time.perf_counter() - start)
            elif op == "sync":
                for name, row in args.items():
                    sim.poke_row(name, row)
            elif op == "poke":
                sim.poke(*args)
            elif op == "peek":
                result = sim.peek(args)
            elif op == "collect":
                result = {
                    name: sim.peek_row(name, settle=False)
                    for name in export_names
                }
            elif op == "reset":
                sim.reset()
            elif op == "snapshot":
                result = sim.export_state()
            elif op == "restore":
                sim.import_state(*args)
            elif op == "export_lane":
                result = sim.export_lane(args)
            elif op == "import_lane":
                sim.import_lane(*args)
            elif op == "activity_stats":
                # ActivityStats is a plain dataclass: pickles as-is.
                result = sim.activity_stats
            else:
                raise ValueError(f"unknown shard worker command {op!r}")
            conn.send(("ok", result))
        except Exception:
            conn.send(("err", traceback.format_exc()))
    conn.close()


def _mp_context():
    """Prefer fork (no re-import, cheap COW of the compiled frontend);
    fall back to spawn where fork does not exist."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class ProcessExecutor(BaseExecutor):
    """One worker process per partition, pickled lane buffers over pipes."""

    name = "process"

    def __init__(
        self,
        partitions: Sequence[Partition],
        lanes: int,
        kernel,
        backend: str,
        exports: Sequence[Sequence[str]],
    ) -> None:
        # KernelConfig instances carry only data, but the name round-trips
        # through get_kernel_config identically and pickles smaller.
        kernel_arg = kernel.name if isinstance(kernel, KernelConfig) else kernel
        ctx = _mp_context()
        self._conns = []
        self._procs = []
        try:
            self._styles = []
            for partition, names in zip(partitions, exports):
                ref = self._graph_ref(partition)
                refs = [ref]
                if ref[0] == "cache":
                    refs.append(("graph", partition.graph))
                # When the artifact cache is warm the worker loads its
                # partition graph from the pgraph entry by key (spawn
                # args stay tiny); a stale/evicted entry fails the
                # handshake, and the worker is respawned with the
                # inline pickled graph instead of failing the build.
                while True:
                    ref = refs.pop(0)
                    parent, child = ctx.Pipe()
                    proc = ctx.Process(
                        target=_shard_worker_main,
                        args=(child, ref, lanes, kernel_arg, backend,
                              list(names)),
                        daemon=True,
                    )
                    proc.start()
                    child.close()
                    try:
                        # Construction handshake: surfaces worker-side
                        # compile errors (e.g. an explicit u64 request on
                        # a wide partition) here.
                        style = self._recv(parent)
                    except RuntimeError:
                        parent.close()
                        proc.join(timeout=5)
                        if refs:
                            continue
                        raise
                    self._conns.append(parent)
                    self._procs.append(proc)
                    self._styles.append(style)
                    break
        except Exception:
            self.close()
            raise

    @staticmethod
    def _graph_ref(partition: Partition):
        """The smallest spawn payload for a partition graph: a pgraph
        cache key when the artifact cache is active (publishing the graph
        first if needed), else the inline graph."""
        from ..serve import artifacts

        cache = artifacts.get_cache()
        if cache is None:
            return ("graph", partition.graph)
        digest = artifacts.design_fingerprint(partition.graph, stage="pgraph")
        if cache.get("pgraph", digest) is None:
            if cache.put("pgraph", digest, partition.graph) is None:
                return ("graph", partition.graph)
        return ("cache", str(cache.root), digest)

    # ------------------------------------------------------------------
    @staticmethod
    def _recv(conn):
        status, payload = conn.recv()
        if status == "err":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def _call(self, index: int, op: str, args=None):
        self._conns[index].send((op, args))
        return self._recv(self._conns[index])

    def _broadcast(self, op: str, args=None) -> List[object]:
        for conn in self._conns:
            conn.send((op, args))
        return [self._recv(conn) for conn in self._conns]

    # ------------------------------------------------------------------
    def poke(self, index: int, name: str, value) -> None:
        self._call(index, "poke", (name, value))

    def peek(self, index: int, name: str) -> List[int]:
        return self._call(index, "peek", name)

    def collect(self) -> List[ExportRows]:
        return self._broadcast("collect")

    def step_collect(self, clock: Optional[str] = None) -> List[ExportRows]:
        results = self._broadcast("step", clock)
        self._account([duration for _, duration in results])
        return [exports for exports, _ in results]

    def apply_sync(self, updates: Sequence[ExportRows]) -> None:
        active = [i for i, rows in enumerate(updates) if rows]
        for i in active:
            self._conns[i].send(("sync", updates[i]))
        for i in active:
            self._recv(self._conns[i])

    def reset(self) -> None:
        self._broadcast("reset")

    def snapshot(self) -> List[object]:
        return self._broadcast("snapshot")

    def restore(self, states: Sequence[object]) -> None:
        for i, state in enumerate(states):
            self._conns[i].send(("restore", state))
        for i in range(len(states)):
            self._recv(self._conns[i])

    def export_lane(self, lane: int) -> List[List[int]]:
        return self._broadcast("export_lane", lane)

    def import_lane(self, lane: int, states: Sequence[Sequence[int]]) -> None:
        for i, state in enumerate(states):
            self._conns[i].send(("import_lane", (lane, state)))
        for i in range(len(states)):
            self._recv(self._conns[i])

    def activity_stats(self) -> List[object]:
        return self._broadcast("activity_stats")

    def describe(self) -> List[str]:
        return list(self._styles)

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close", None))
                conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._conns = []
        self._procs = []


# ----------------------------------------------------------------------
_EXECUTOR_CLASSES = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(
    name: str,
    partitions: Sequence[Partition],
    lanes: int,
    kernel,
    backend: str,
    exports: Sequence[Sequence[str]],
) -> BaseExecutor:
    """Instantiate an executor by name (``serial``/``thread``/``process``)."""
    cls = _EXECUTOR_CLASSES.get(name)
    if cls is None:
        raise KeyError(
            f"unknown executor {name!r}; choose from {', '.join(EXECUTORS)}"
        )
    return cls(partitions, lanes, kernel, backend, exports)
