"""Pluggable executors: P partition workers per cycle, one barrier each.

The sharded simulator's bulk-synchronous schedule needs a small command
set per partition -- poke, step-and-collect-exports, apply-sync, peek,
reset, checkpoint.  Three executors realise it:

* :class:`SerialExecutor` -- every partition stepped in-process, in
  index order.  The deterministic reference: zero concurrency, zero IPC,
  bit-exact with the others by construction.
* :class:`ThreadExecutor` -- a ``concurrent.futures`` thread pool steps
  the partitions concurrently.  Same address space (lane rows never
  leave the process); throughput is GIL-bound for the Python-level walk
  loops but the executor exists as the shared-memory rung of the ladder
  and for NumPy builds that release the GIL.
* :class:`ProcessExecutor` -- one ``multiprocessing`` worker process per
  partition, each hosting its own lane-vectorised
  :class:`~repro.batch.BatchSimulator` built from the pickled partition
  graph.  Commands travel over pipes; lane rows cross as plain int lists
  (pickled lane buffers), or -- when every partition fits the u64 plane
  and NumPy is present -- as index writes into per-partition
  ``multiprocessing.shared_memory`` lane planes (``transport="shm"``),
  cutting the per-cycle exchange to zero-copy row assignments.  This is
  the executor that actually buys wall-clock parallelism for heavy
  partitions.
* :class:`~repro.shard.remote.SocketExecutor` -- the same command set as
  length-prefixed pickle frames over TCP, partitions spread round-robin
  over ``shard-worker`` hosts (see :mod:`repro.shard.remote`).

All four expose the same interface, so the sharded simulator's exchange
logic is written once.  The per-cycle protocol is two phases: broadcast
``step`` to every worker, gather each worker's export rows (its owned
registers that other partitions read), then scatter the per-reader sync
updates.  That is Cascade 2's ``LI[c+1] = LI[c,I] . RUM`` realised as
batched lane-vector exchanges.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from ..batch.backend import HAS_NUMPY, U64_MAX_WIDTH
from ..batch.simulator import BatchSimulator
from ..kernels.config import KernelConfig
from ..repcut.partition import Partition

EXECUTORS = ("serial", "thread", "process", "socket")

#: One partition's exported register rows: ``{register: [lane values]}``.
ExportRows = Dict[str, List[int]]


def _require_count(executor, op: str, got: int, expected: int) -> None:
    """Refuse partition-indexed payloads of the wrong length.

    Silently zipping a short ``states`` list against the partition list
    would leave trailing partitions stale -- a wrong-partition-count
    snapshot must fail loudly, not corrupt lockstep.
    """
    if got != expected:
        raise ValueError(
            f"{executor.name} executor {op}() got {got} partition "
            f"entries, expected {expected} -- was this state captured "
            "under a different partitioning?"
        )


def _is_pgraph_cache_miss(text) -> bool:
    """Recognise the one handshake failure worth a respawn: the worker
    could not resolve a ``pgraph`` cache reference (stale/evicted
    entry).  Anything else -- a genuine worker-side compile error --
    would fail identically on retry and must surface as-is."""
    message = str(text)
    return "pgraph cache entry" in message and "missing" in message


def _make_partition_sim(
    partition: Partition, lanes: int, kernel, backend: str
) -> BatchSimulator:
    # Partition graphs come out of partition_graph already optimised;
    # re-optimising could eliminate the replica inputs the sync needs.
    return BatchSimulator(
        partition.graph,
        lanes=lanes,
        kernel=kernel,
        backend=backend,
        optimize_graph=False,
    )


def _step_one(sim: BatchSimulator, clock: Optional[str]) -> None:
    """One edge on one partition: all domains, or one domain if present.

    A partition owning no register in ``clock`` simply sits the edge out;
    its combinational logic settles lazily at the next observation.
    """
    if clock is None:
        sim.step()
    elif clock in sim.clock_domains:
        sim.step_domain(clock)


class BaseExecutor:
    """The command set the sharded simulator drives (see module docs).

    Executors also keep two measured step-time accumulators:
    ``step_total_seconds`` (sum of every partition's kernel time) and
    ``step_max_seconds`` (sum over cycles of the *slowest* partition's
    time -- the barrier critical path, i.e. what a host with >= P free
    cores pays per cycle).
    """

    name = "abstract"
    #: How lane rows move during the exchange: ``"local"`` (same address
    #: space), ``"pipe"`` (pickled over multiprocessing pipes), ``"shm"``
    #: (shared-memory lane planes), or ``"socket"`` (TCP frames).
    transport = "local"
    step_total_seconds: float = 0.0
    step_max_seconds: float = 0.0

    def _account(self, durations: Sequence[float]) -> None:
        self.step_total_seconds += sum(durations)
        self.step_max_seconds += max(durations, default=0.0)

    def poke(self, index: int, name: str, value) -> None:
        raise NotImplementedError

    def peek(self, index: int, name: str) -> List[int]:
        raise NotImplementedError

    def collect(self) -> List[ExportRows]:
        """Every partition's current export rows, without stepping."""
        raise NotImplementedError

    def step_collect(self, clock: Optional[str] = None) -> List[ExportRows]:
        """Advance every partition one edge and gather export rows."""
        raise NotImplementedError

    def apply_sync(self, updates: Sequence[ExportRows]) -> None:
        """Refresh replica inputs: ``updates[i]`` goes to partition i."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def snapshot(self) -> List[object]:
        raise NotImplementedError

    def restore(self, states: Sequence[object]) -> None:
        raise NotImplementedError

    def export_lane(self, lane: int) -> List[List[int]]:
        """One lane's per-partition slot-value columns (portable ints)."""
        raise NotImplementedError

    def import_lane(self, lane: int, states: Sequence[Sequence[int]]) -> None:
        """Load one lane into every partition from ``export_lane`` output."""
        raise NotImplementedError

    def activity_stats(self) -> List[object]:
        """Per-partition :class:`~repro.kernels.activity.ActivityStats`
        (``None`` entries for plain kernels) -- the settle-skipping
        observability surface when partitions run activity kernels."""
        raise NotImplementedError

    def describe(self) -> List[str]:
        """Per-partition ``backend/style`` strings (reporting only)."""
        raise NotImplementedError

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# In-process executors
# ----------------------------------------------------------------------
class SerialExecutor(BaseExecutor):
    """Deterministic in-process reference: partitions step in index order."""

    name = "serial"

    def __init__(
        self,
        partitions: Sequence[Partition],
        lanes: int,
        kernel,
        backend: str,
        exports: Sequence[Sequence[str]],
    ) -> None:
        self.exports = [list(names) for names in exports]
        self.sims = [
            _make_partition_sim(p, lanes, kernel, backend) for p in partitions
        ]

    def poke(self, index: int, name: str, value) -> None:
        self.sims[index].poke(name, value)

    def peek(self, index: int, name: str) -> List[int]:
        return self.sims[index].peek(name)

    def _exports_of(self, index: int) -> ExportRows:
        sim = self.sims[index]
        # Exported names are register state slots: valid post-commit
        # without settling, so the exchange never pays an extra comb pass.
        return {
            name: sim.peek_row(name, settle=False)
            for name in self.exports[index]
        }

    def collect(self) -> List[ExportRows]:
        return [self._exports_of(i) for i in range(len(self.sims))]

    def step_collect(self, clock: Optional[str] = None) -> List[ExportRows]:
        results = []
        durations = []
        for index, sim in enumerate(self.sims):
            start = time.perf_counter()
            _step_one(sim, clock)
            results.append(self._exports_of(index))
            durations.append(time.perf_counter() - start)
        self._account(durations)
        return results

    def apply_sync(self, updates: Sequence[ExportRows]) -> None:
        _require_count(self, "apply_sync", len(updates), len(self.sims))
        for sim, rows in zip(self.sims, updates):
            for name, row in rows.items():
                sim.poke_row(name, row)

    def reset(self) -> None:
        for sim in self.sims:
            sim.reset()

    def snapshot(self) -> List[object]:
        return [sim.snapshot() for sim in self.sims]

    def restore(self, states: Sequence[object]) -> None:
        _require_count(self, "restore", len(states), len(self.sims))
        for sim, state in zip(self.sims, states):
            sim.restore(state)

    def export_lane(self, lane: int) -> List[List[int]]:
        return [sim.export_lane(lane) for sim in self.sims]

    def import_lane(self, lane: int, states: Sequence[Sequence[int]]) -> None:
        _require_count(self, "import_lane", len(states), len(self.sims))
        for sim, state in zip(self.sims, states):
            sim.import_lane(lane, state)

    def activity_stats(self) -> List[object]:
        return [sim.activity_stats for sim in self.sims]

    def describe(self) -> List[str]:
        return [f"{sim.backend}/{sim.kernel.style}" for sim in self.sims]


class ThreadExecutor(SerialExecutor):
    """Thread-pool barrier step; everything else as the serial executor.

    Each worker thread touches only its own partition simulator, and the
    barrier in :meth:`step_collect` serialises against the main thread's
    pokes/syncs, so no locking is needed.
    """

    name = "thread"

    def __init__(self, partitions, lanes, kernel, backend, exports) -> None:
        super().__init__(partitions, lanes, kernel, backend, exports)
        from concurrent.futures import ThreadPoolExecutor

        self._pool = ThreadPoolExecutor(
            max_workers=len(self.sims), thread_name_prefix="shard"
        )

    def step_collect(self, clock: Optional[str] = None) -> List[ExportRows]:
        def run(index: int):
            start = time.perf_counter()
            _step_one(self.sims[index], clock)
            exports = self._exports_of(index)
            return exports, time.perf_counter() - start

        results = list(self._pool.map(run, range(len(self.sims))))
        self._account([duration for _, duration in results])
        return [exports for exports, _ in results]

    def close(self) -> None:
        self._pool.shutdown()


# ----------------------------------------------------------------------
# Process-pool executor
# ----------------------------------------------------------------------
def _resolve_graph_ref(graph_ref):
    """A worker-side graph reference: ``("graph", g)`` carries the pickled
    partition graph itself; ``("cache", root, digest)`` names a ``pgraph``
    entry in the :mod:`repro.serve` artifact cache the worker loads
    locally -- the spawn pipe then ships a few hundred bytes instead of
    the whole graph.  A missing/corrupt cache entry raises (the parent
    falls back to respawning with the inline form)."""
    kind, *payload = graph_ref
    if kind == "graph":
        return payload[0]
    root, digest = payload
    from ..serve.artifacts import ArtifactCache

    graph = ArtifactCache(root).get("pgraph", digest)
    if graph is None:
        raise RuntimeError(
            f"pgraph cache entry {digest[:12]} missing from {root}"
        )
    return graph


def _attach_shm(name: str):
    """Attach an existing shared-memory segment without registering it
    with the resource tracker -- the creating parent owns the segment's
    lifetime; a tracked attach would double-unlink it at worker exit."""
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= needs Python 3.13
        # Older interpreters: suppress the tracker registration during
        # attach.  (Un)registering after the fact is wrong under fork --
        # the worker shares the parent's tracker process, so an
        # unregister here would drop the *parent's* entry for the
        # segment and make its own unlink complain at exit.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _WorkerPlanes:
    """Worker-side view of the shared lane planes (lazy attach).

    ``spec`` is the parent's table: ``planes`` names every partition's
    segment, ``index``/``rows`` locate this worker's own export rows,
    ``imports`` maps replica-input names to ``(writer, row)`` sources.
    """

    def __init__(self, spec, lanes: int):
        self.spec = spec
        self.lanes = lanes
        self._segs = {}
        self._views = {}
        self._slots = None

    def view(self, index: int):
        if index not in self._views:
            import numpy as np

            name, rows = self.spec["planes"][index]
            seg = _attach_shm(name)
            self._segs[index] = seg
            self._views[index] = np.ndarray(
                (rows, self.lanes), dtype=np.uint64, buffer=seg.buf
            )
        return self._views[index]

    def publish(self, sim: BatchSimulator) -> None:
        """Write this worker's export rows into its own plane (one
        vectorised gather: row *j* of the plane is export name *j*)."""
        own = self.view(self.spec["index"])
        if self._slots is None:
            import numpy as np

            ordered = sorted(self.spec["rows"].items(), key=lambda kv: kv[1])
            self._slots = np.array(
                [sim.bundle.signal_slots[name] for name, _ in ordered],
                dtype=np.intp,
            )
        own[:] = sim.values[self._slots]

    def adopt(self, sim: BatchSimulator, names) -> None:
        """Refresh replica inputs straight from the writers' planes."""
        for name in names:
            writer, row_index = self.spec["imports"][name]
            sim.adopt_row(name, self.view(writer)[row_index])

    def close(self) -> None:
        self._views.clear()
        for seg in self._segs.values():
            try:
                seg.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
        self._segs.clear()


def _shard_worker_main(conn, graph_ref, lanes, kernel, backend, export_names,
                       shm_spec=None):
    """One worker process: host a partition's BatchSimulator over a pipe.

    Replies ``("ok", payload)`` or ``("err", traceback)`` to every
    command; the first message is the construction handshake carrying the
    resolved ``backend/style`` string.  With ``shm_spec`` the exchange
    goes through shared lane planes: ``step``/``collect`` publish export
    rows as index writes (the pipe reply carries only the duration) and
    ``sync_shm`` adopts replica rows straight from the writers' planes.
    """
    planes = None
    try:
        sim = BatchSimulator(
            _resolve_graph_ref(graph_ref), lanes=lanes, kernel=kernel,
            backend=backend, optimize_graph=False,
        )
        if shm_spec is not None:
            planes = _WorkerPlanes(shm_spec, lanes)
    except Exception:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", f"{sim.backend}/{sim.kernel.style}"))
    while True:
        try:
            op, args = conn.recv()
        except (EOFError, OSError):
            break
        try:
            result = None
            if op == "close":
                conn.send(("ok", None))
                break
            if op == "step":
                start = time.perf_counter()
                _step_one(sim, args)
                if planes is None:
                    exports = {
                        name: sim.peek_row(name, settle=False)
                        for name in export_names
                    }
                else:
                    planes.publish(sim)
                    exports = None
                result = (exports, time.perf_counter() - start)
            elif op == "sync":
                for name, row in args.items():
                    sim.poke_row(name, row)
            elif op == "sync_shm":
                planes.adopt(sim, args)
            elif op == "poke":
                sim.poke(*args)
            elif op == "peek":
                result = sim.peek(args)
            elif op == "collect":
                if planes is None:
                    result = {
                        name: sim.peek_row(name, settle=False)
                        for name in export_names
                    }
                else:
                    planes.publish(sim)
            elif op == "reset":
                sim.reset()
            elif op == "snapshot":
                result = sim.export_state()
            elif op == "restore":
                sim.import_state(*args)
            elif op == "export_lane":
                result = sim.export_lane(args)
            elif op == "import_lane":
                sim.import_lane(*args)
            elif op == "activity_stats":
                # ActivityStats is a plain dataclass: pickles as-is.
                result = sim.activity_stats
            else:
                raise ValueError(f"unknown shard worker command {op!r}")
            conn.send(("ok", result))
        except Exception:
            conn.send(("err", traceback.format_exc()))
    if planes is not None:
        planes.close()
    conn.close()


def _handshake_recv(conn):
    """Receive a worker's construction handshake, mapping a silent death
    (EOF before the first reply) onto the same RuntimeError surface as a
    worker-reported failure."""
    try:
        status, payload = conn.recv()
    except (EOFError, OSError) as exc:
        raise RuntimeError(
            "shard worker died during the construction handshake "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if status == "err":
        raise RuntimeError(f"shard worker failed:\n{payload}")
    return payload


def _mp_context():
    """Prefer fork (no re-import, cheap COW of the compiled frontend);
    fall back to spawn where fork does not exist."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _shm_eligibility(partitions, backend: str):
    """Whether shared-memory lane planes can carry the exchange.

    Returns ``(eligible, reason)``: the planes are uint64 rows, so every
    partition must resolve onto the single-row u64 backend -- NumPy
    present, no explicit object/limb/python request, and no slot wider
    than :data:`~repro.batch.backend.U64_MAX_WIDTH` bits anywhere.
    """
    if not HAS_NUMPY:
        return False, "NumPy is unavailable"
    if backend not in ("auto", "u64"):
        return False, f"backend {backend!r} does not use u64 planes"
    for index, partition in enumerate(partitions):
        widest = max(
            (node.width for node in partition.graph.nodes), default=0
        )
        if widest > U64_MAX_WIDTH:
            return False, (
                f"partition {index} has {widest}-bit slots (> "
                f"{U64_MAX_WIDTH}); the u64 plane cannot hold them"
            )
    return True, ""


class ProcessExecutor(BaseExecutor):
    """One worker process per partition, lane buffers over pipes or
    shared-memory planes.

    ``shm_planes=None`` (the default) takes the zero-copy path whenever
    every partition fits the u64 plane, falling back to pickled pipe
    rows otherwise; ``True`` requires it (raising when ineligible) and
    ``False`` forces the pipe path.  ``transport`` reports which one is
    live.
    """

    name = "process"
    #: Bounded wait for a worker's close acknowledgement and join; a
    #: wedged worker (stuck syscall, livelocked kernel) is terminated
    #: and, failing that, killed, instead of hanging close() forever.
    close_timeout = 5.0

    def __init__(
        self,
        partitions: Sequence[Partition],
        lanes: int,
        kernel,
        backend: str,
        exports: Sequence[Sequence[str]],
        routes: Sequence[Tuple[str, int, Tuple[int, ...]]] = (),
        shm_planes: Optional[bool] = None,
    ) -> None:
        # KernelConfig instances carry only data, but the name round-trips
        # through get_kernel_config identically and pickles smaller.
        kernel_arg = kernel.name if isinstance(kernel, KernelConfig) else kernel
        ctx = _mp_context()
        self._conns = []
        self._procs = []
        self._shm_segs = []
        self._planes = []
        self._prev_planes = []
        self._prev_valid = False
        self._export_index: List[Dict[str, int]] = []
        self._imports: List[Dict[str, Tuple[int, int]]] = []
        self.lanes = lanes
        self.transport = "pipe"
        eligible, reason = _shm_eligibility(partitions, backend)
        if shm_planes is True and not eligible:
            raise RuntimeError(f"shm_planes=True but {reason}")
        use_shm = eligible if shm_planes is None else bool(shm_planes)
        shm_specs: List[Optional[dict]] = [None] * len(partitions)
        if use_shm:
            shm_specs = self._create_planes(partitions, lanes, exports,
                                            routes)
            self.transport = "shm"
        try:
            self._styles = []
            for index, (partition, names) in enumerate(
                zip(partitions, exports)
            ):
                ref = self._graph_ref(partition)
                refs = [ref]
                if ref[0] == "cache":
                    refs.append(("graph", partition.graph))
                # When the artifact cache is warm the worker loads its
                # partition graph from the pgraph entry by key (spawn
                # args stay tiny); a stale/evicted entry fails the
                # handshake, and the worker is respawned with the
                # inline pickled graph instead of failing the build.
                while True:
                    ref = refs.pop(0)
                    parent, child = ctx.Pipe()
                    proc = ctx.Process(
                        target=_shard_worker_main,
                        args=(child, ref, lanes, kernel_arg, backend,
                              list(names), shm_specs[index]),
                        daemon=True,
                    )
                    proc.start()
                    child.close()
                    try:
                        # Construction handshake: surfaces worker-side
                        # compile errors (e.g. an explicit u64 request on
                        # a wide partition) here.
                        style = _handshake_recv(parent)
                    except RuntimeError as exc:
                        parent.close()
                        proc.join(timeout=5)
                        # Respawn with the inline graph only on the one
                        # retryable failure (a stale/evicted pgraph
                        # entry); a genuine worker-side error would fail
                        # identically on retry, and retrying would bury
                        # its traceback under the second attempt's.
                        if refs and _is_pgraph_cache_miss(exc):
                            continue
                        raise
                    self._conns.append(parent)
                    self._procs.append(proc)
                    self._styles.append(style)
                    break
        except Exception:
            self.close()
            raise

    def _create_planes(self, partitions, lanes, exports, routes):
        """Allocate one shared ``(rows, B)`` uint64 plane per partition
        and derive the worker-side index tables from the routes."""
        import numpy as np
        from multiprocessing import shared_memory

        plane_table = []
        for names in exports:
            rows = len(names)
            seg = shared_memory.SharedMemory(
                create=True, size=max(1, rows * lanes * 8)
            )
            self._shm_segs.append(seg)
            plane = (
                np.ndarray((rows, lanes), dtype=np.uint64, buffer=seg.buf)
                if rows else None
            )
            self._planes.append(plane)
            # A private copy of each plane, for the parent's vectorised
            # change mask: rows equal to the previous step never
            # materialise as Python lists.
            self._prev_planes.append(
                np.empty_like(plane) if plane is not None else None
            )
            self._export_index.append({n: j for j, n in enumerate(names)})
            plane_table.append((seg.name, rows))
        self._imports = [{} for _ in partitions]
        for name, writer, readers in routes:
            source = (writer, self._export_index[writer][name])
            for reader in readers:
                self._imports[reader][name] = source
        return [
            {
                "planes": plane_table,
                "index": i,
                "rows": self._export_index[i],
                "imports": self._imports[i],
            }
            for i in range(len(partitions))
        ]

    def _release_planes(self) -> None:
        self._planes = []
        self._prev_planes = []
        for seg in self._shm_segs:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._shm_segs = []

    @staticmethod
    def _graph_ref(partition: Partition):
        """The smallest spawn payload for a partition graph: a pgraph
        cache key when the artifact cache is active (publishing the graph
        first if needed), else the inline graph."""
        from ..serve import artifacts

        cache = artifacts.get_cache()
        if cache is None:
            return ("graph", partition.graph)
        digest = artifacts.design_fingerprint(partition.graph, stage="pgraph")
        if cache.get("pgraph", digest) is None:
            if cache.put("pgraph", digest, partition.graph) is None:
                return ("graph", partition.graph)
        return ("cache", str(cache.root), digest)

    # ------------------------------------------------------------------
    def _send(self, index: int, op: str, args=None) -> None:
        try:
            self._conns[index].send((op, args))
        except (OSError, BrokenPipeError) as exc:
            raise RuntimeError(
                f"shard worker {index} is gone "
                f"({type(exc).__name__}: {exc}); close() this executor "
                "and build a fresh one"
            ) from exc

    def _recv(self, index: int):
        try:
            status, payload = self._conns[index].recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {index} died mid-command "
                f"({type(exc).__name__}: {exc}); close() this executor "
                "and build a fresh one"
            ) from exc
        if status == "err":
            raise RuntimeError(f"shard worker {index} failed:\n{payload}")
        return payload

    def _call(self, index: int, op: str, args=None):
        self._send(index, op, args)
        return self._recv(index)

    def _broadcast(self, op: str, args=None) -> List[object]:
        for index in range(len(self._conns)):
            self._send(index, op, args)
        return [self._recv(index) for index in range(len(self._conns))]

    def _plane_rows(self, index: int) -> ExportRows:
        """Every export row of one plane, materialised (and remembered
        as the change-mask baseline)."""
        view = self._planes[index]
        if view is None:
            return {}
        self._prev_planes[index][:] = view
        return {
            name: view[j].tolist()
            for name, j in self._export_index[index].items()
        }

    def _changed_rows(self, index: int) -> ExportRows:
        """Only the export rows that changed since the last report.

        The compare runs vectorised against the parent's private copy of
        the plane; for a quiescent register nothing crosses into Python.
        The coordinator counts rows absent from a report as natively
        suppressed, so the differential-exchange semantics (and its
        counters) are unchanged."""
        view = self._planes[index]
        if view is None:
            return {}
        prev = self._prev_planes[index]
        changed = (view != prev).any(axis=1)
        if not changed.any():
            return {}
        prev[:] = view
        return {
            name: view[j].tolist()
            for name, j in self._export_index[index].items()
            if changed[j]
        }

    # ------------------------------------------------------------------
    def poke(self, index: int, name: str, value) -> None:
        self._call(index, "poke", (name, value))

    def peek(self, index: int, name: str) -> List[int]:
        return self._call(index, "peek", name)

    def collect(self) -> List[ExportRows]:
        results = self._broadcast("collect")
        if self.transport == "shm":
            rows = [self._plane_rows(i) for i in range(len(self._conns))]
            self._prev_valid = True
            return rows
        return results

    def step_collect(self, clock: Optional[str] = None) -> List[ExportRows]:
        results = self._broadcast("step", clock)
        self._account([duration for _, duration in results])
        if self.transport == "shm":
            if not self._prev_valid:
                rows = [self._plane_rows(i) for i in range(len(self._conns))]
                self._prev_valid = True
                return rows
            return [self._changed_rows(i) for i in range(len(self._conns))]
        return [exports for exports, _ in results]

    def apply_sync(self, updates: Sequence[ExportRows]) -> None:
        _require_count(self, "apply_sync", len(updates), len(self._conns))
        if self.transport != "shm":
            active = [i for i, rows in enumerate(updates) if rows]
            for i in active:
                self._send(i, "sync", updates[i])
            for i in active:
                self._recv(i)
            return
        # Shared-memory path: ship row *names*; each worker adopts the
        # rows straight from the writers' planes.  Rows the schedule does
        # not know (an executor driven without routes) fall back to the
        # pickled form.
        pending = []
        for i, rows in enumerate(updates):
            known = [n for n in rows if n in self._imports[i]]
            rest = {n: r for n, r in rows.items()
                    if n not in self._imports[i]}
            if known:
                self._send(i, "sync_shm", known)
                pending.append(i)
            if rest:
                self._send(i, "sync", rest)
                pending.append(i)
        for i in pending:
            self._recv(i)

    def reset(self) -> None:
        # Lane state jumped without a publish: the change-mask baseline
        # is stale, so the next step reports every row (same for
        # restore/import_lane below).
        self._prev_valid = False
        self._broadcast("reset")

    def snapshot(self) -> List[object]:
        return self._broadcast("snapshot")

    def restore(self, states: Sequence[object]) -> None:
        _require_count(self, "restore", len(states), len(self._conns))
        self._prev_valid = False
        for i, state in enumerate(states):
            self._send(i, "restore", state)
        for i in range(len(states)):
            self._recv(i)

    def export_lane(self, lane: int) -> List[List[int]]:
        return self._broadcast("export_lane", lane)

    def import_lane(self, lane: int, states: Sequence[Sequence[int]]) -> None:
        _require_count(self, "import_lane", len(states), len(self._conns))
        self._prev_valid = False
        for i, state in enumerate(states):
            self._send(i, "import_lane", (lane, state))
        for i in range(len(states)):
            self._recv(i)

    def activity_stats(self) -> List[object]:
        return self._broadcast("activity_stats")

    def describe(self) -> List[str]:
        return list(self._styles)

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close", None))
                # A dead or wedged worker never acknowledges; a bare
                # recv() here would block forever.  poll() bounds the
                # wait so the join/terminate ladder below actually runs.
                if conn.poll(self.close_timeout):
                    conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=self.close_timeout)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1)
            if proc.is_alive():  # pragma: no cover - unkillable worker
                proc.kill()
                proc.join(timeout=1)
        self._conns = []
        self._procs = []
        self._release_planes()


# ----------------------------------------------------------------------
_EXECUTOR_CLASSES = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(
    name: str,
    partitions: Sequence[Partition],
    lanes: int,
    kernel,
    backend: str,
    exports: Sequence[Sequence[str]],
    routes: Sequence[Tuple[str, int, Tuple[int, ...]]] = (),
    hosts: Optional[Sequence] = None,
    shm_planes: Optional[bool] = None,
) -> BaseExecutor:
    """Instantiate an executor by name (one of :data:`EXECUTORS`).

    ``routes`` is the RUM exchange schedule ``(name, writer, readers)``
    -- the process executor derives its shared-memory import tables from
    it, the socket executor its static per-host exchange plan.
    ``hosts`` (socket only) names running ``shard-worker`` endpoints;
    ``shm_planes`` (process only) requests/forbids the shared-memory
    lane planes.
    """
    if name == "socket":
        if shm_planes is not None:
            raise ValueError(
                "shm_planes= applies to the process executor, not socket"
            )
        from .remote import SocketExecutor

        return SocketExecutor(
            partitions, lanes, kernel, backend, exports,
            routes=routes, hosts=hosts,
        )
    if hosts is not None:
        raise ValueError(
            f"hosts= applies to the socket executor, not {name!r}"
        )
    if name == "process":
        return ProcessExecutor(
            partitions, lanes, kernel, backend, exports,
            routes=routes, shm_planes=shm_planes,
        )
    if shm_planes is not None:
        raise ValueError(
            f"shm_planes= applies to the process executor, not {name!r}"
        )
    cls = _EXECUTOR_CLASSES.get(name)
    if cls is None:
        raise KeyError(
            f"unknown executor {name!r}; choose from {', '.join(EXECUTORS)}"
        )
    return cls(partitions, lanes, kernel, backend, exports)
