"""CLI verbs for the service layer: cache management + server/client.

Routed from ``python -m repro.experiments serve ...``::

    serve cache warm --design rocket-1 --partitions 4 --partitioner refined
    serve cache ls
    serve cache gc --max-bytes 268435456
    serve run --design rocket-1 --engine shard --lanes 8 --port 9090
    serve client --host 127.0.0.1 --port 9090 --design rocket-1 --cycles 32

``cache`` verbs honour ``--cache-dir`` or the ``REPRO_CACHE_DIR``
environment variable; ``cache warm`` populates every artifact kind a
warm server start needs (compiled graph, partitions, RUM, lowered
kernels), so the follow-up ``serve run`` skips elaboration entirely.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .artifacts import ArtifactCache, configure_cache, get_cache


def _cache_from_args(args) -> ArtifactCache:
    if args.cache_dir:
        return configure_cache(args.cache_dir)
    cache = get_cache()
    if cache is None:
        raise SystemExit(
            "no cache configured: pass --cache-dir or set REPRO_CACHE_DIR"
        )
    return cache


def _cmd_cache_warm(args) -> int:
    cache = _cache_from_args(args)
    os.environ["REPRO_CACHE_DIR"] = str(cache.root)
    from ..designs.registry import get_design
    from ..shard.simulator import ShardedBatchSimulator

    source = get_design(args.design)
    sim = ShardedBatchSimulator(
        source,
        lanes=args.lanes,
        num_partitions=args.partitions,
        partitioner=args.partitioner,
        kernel=args.kernel,
        backend=args.backend,
    )
    sim.close()
    print(f"warmed {args.design}: {len(cache.entries())} artifact(s) in "
          f"{cache.root}")
    for entry in cache.entries():
        print(f"  {entry.kind:<10} {entry.size_bytes:>10} B  {entry.digest[:16]}")
    return 0


def _cmd_cache_ls(args) -> int:
    cache = _cache_from_args(args)
    entries = cache.entries()
    total = sum(e.size_bytes for e in entries)
    print(f"{cache.root}: {len(entries)} artifact(s), {total} bytes")
    for entry in entries:
        print(f"  {entry.kind:<10} {entry.size_bytes:>10} B  {entry.digest}")
    return 0


def _cmd_cache_gc(args) -> int:
    cache = _cache_from_args(args)
    if args.clear:
        dropped = cache.clear()
    else:
        dropped = cache.gc(args.max_bytes)
    print(f"evicted {dropped} artifact(s)")
    return 0


def _cmd_run(args) -> int:
    if args.cache_dir:
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
        configure_cache(args.cache_dir)
    import asyncio

    from ..designs.registry import get_design
    from .fleet import LaneFleet
    from .server import FleetServer

    source = get_design(args.design)
    fleet = LaneFleet(
        source,
        engine=args.engine,
        lanes=args.lanes,
        kernel=args.kernel,
        backend=args.backend,
        num_partitions=args.partitions,
        partitioner=args.partitioner,
        executor=args.executor,
        max_members=args.max_members,
    )
    server = FleetServer(fleet, args.host, args.port,
                         step_timeout=args.step_timeout)

    async def main() -> None:
        address = await server.start()
        print(f"serving {args.design} ({args.engine} engine, "
              f"{fleet.capacity} session slots) on {address[0]}:{address[1]}",
              flush=True)
        try:
            await server.run_until_stopped()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        fleet.close()
    return 0


def _cmd_client(args) -> int:
    import random

    from ..designs.registry import compiled_graph
    from .server import connect_session

    session = connect_session(args.host, args.port)
    print(f"session {session.session_id}: member {session.member}, "
          f"lane {session.lane}")
    inputs = sorted(compiled_graph(args.design).inputs) if args.design else []
    rng = random.Random(args.seed)
    for _ in range(args.cycles):
        for name in inputs:
            session.poke(name, rng.randrange(1 << 16))
        session.step(1, timeout=args.step_timeout)
    print(f"advanced to cycle {session.cycle}")
    if args.peek:
        for name in args.peek:
            print(f"  {name} = {session.peek(name)}")
    session.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    def add_engine_args(p) -> None:
        p.add_argument("--design", default="rocket-1")
        p.add_argument("--lanes", type=int, default=8)
        p.add_argument("--partitions", type=int, default=2)
        p.add_argument("--partitioner", default="refined",
                       choices=["greedy", "refined"])
        p.add_argument("--kernel", default="PSU")
        p.add_argument("--backend", default="auto")

    cache = sub.add_parser("cache", help="artifact cache management")
    cache_sub = cache.add_subparsers(dest="cache_verb", required=True)

    warm = cache_sub.add_parser("warm", help="precompile a design into the cache")
    warm.add_argument("--cache-dir", default=None)
    add_engine_args(warm)
    warm.set_defaults(func=_cmd_cache_warm)

    ls = cache_sub.add_parser("ls", help="list cached artifacts")
    ls.add_argument("--cache-dir", default=None)
    ls.set_defaults(func=_cmd_cache_ls)

    gc = cache_sub.add_parser("gc", help="evict artifacts down to a size cap")
    gc.add_argument("--cache-dir", default=None)
    gc.add_argument("--max-bytes", type=int, default=None)
    gc.add_argument("--clear", action="store_true",
                    help="drop everything, ignore --max-bytes")
    gc.set_defaults(func=_cmd_cache_gc)

    run = sub.add_parser("run", help="serve a fleet over TCP")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=0)
    run.add_argument("--engine", default="batch", choices=["batch", "shard"])
    run.add_argument("--executor", default="serial",
                     choices=["serial", "thread", "process", "socket"])
    run.add_argument("--max-members", type=int, default=4)
    run.add_argument("--step-timeout", type=float, default=30.0)
    run.add_argument("--cache-dir", default=None)
    add_engine_args(run)
    run.set_defaults(func=_cmd_run)

    client = sub.add_parser("client", help="drive one session with random stimulus")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--design", default=None,
                        help="design name, to poke its inputs each cycle")
    client.add_argument("--cycles", type=int, default=16)
    client.add_argument("--seed", type=int, default=0)
    client.add_argument("--peek", nargs="*", default=None)
    client.add_argument("--step-timeout", type=float, default=30.0)
    client.set_defaults(func=_cmd_client)

    return parser


def cli(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli())
