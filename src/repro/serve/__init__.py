"""Simulation-as-a-service: persistent artifacts + a lane-checkout fleet.

Two layers turn the five-way engine matrix into a long-running service:

* :mod:`repro.serve.artifacts` -- a content-addressed on-disk artifact
  cache keyed by deterministic design fingerprints, so a warm second
  process skips elaboration, partitioning, and lowering entirely;
* :mod:`repro.serve.fleet` / :mod:`repro.serve.server` -- a
  :class:`LaneFleet` multiplexing client *sessions* onto checked-out
  lanes of shared batched simulators, with an asyncio front end speaking
  a length-prefixed JSON protocol.

Public API::

    from repro.serve import (
        ArtifactCache, configure_cache, get_cache, design_fingerprint,
        LaneFleet, Session, LaneState,
        FleetServer, FleetClient, serve_in_thread,
    )
"""

from .artifacts import (
    ArtifactCache,
    CacheStats,
    configure_cache,
    design_fingerprint,
    disable_cache,
    get_cache,
    source_digest,
)

#: Layer-2 symbols live in heavyweight modules (they pull in the whole
#: engine matrix); the frontend pipeline imports ``serve.artifacts`` on
#: every cached compile, so those are resolved lazily (PEP 562) to keep
#: the cache layer import-cycle-free and cheap.
_LAZY = {
    "FleetFullError": "fleet",
    "LaneFleet": "fleet",
    "LaneState": "fleet",
    "Session": "fleet",
    "FleetClient": "server",
    "FleetServer": "server",
    "RemoteSession": "server",
    "ServerHandle": "server",
    "connect_session": "server",
    "serve_in_thread": "server",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "FleetClient",
    "FleetFullError",
    "FleetServer",
    "LaneFleet",
    "LaneState",
    "RemoteSession",
    "ServerHandle",
    "Session",
    "configure_cache",
    "connect_session",
    "design_fingerprint",
    "disable_cache",
    "get_cache",
    "serve_in_thread",
    "source_digest",
]
