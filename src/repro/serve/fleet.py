"""Lane-checkout fleet: many client sessions on few batched engines.

The batched engines (:class:`~repro.batch.BatchSimulator`,
:class:`~repro.shard.ShardedBatchSimulator`) advance B independent lanes
per kernel invocation, but their host surface assumes one caller owns all
B lanes.  :class:`LaneFleet` turns the lanes into a *checkout pool*: each
client opens a :class:`Session` that owns exactly one lane of one fleet
member and sees a scalar-simulator-compatible surface (``poke`` /
``peek`` / ``step`` / ``cycle``), while under the hood sessions sharing a
member advance together through one batched kernel sweep.

Coalesced stepping
------------------
Stepping a member advances *every* lane, so a lane may only move when its
session asked for it.  The fleet therefore applies a per-member barrier:
a member steps only when **all** of its open sessions have at least one
pending cycle, and then advances ``min(pending)`` cycles in one batched
burst.  ``Session.step`` defaults to the non-blocking *offer* flavour
(request cycles, advance whatever the barrier allows, return the number
actually advanced) which is what a single-threaded round-robin driver
wants; ``wait=True`` blocks on the fleet condition variable until the
session's request drains -- the flavour the asyncio server uses, where
coalescing across concurrently-stepping clients happens naturally.

Preemption and migration
------------------------
A session's entire state is one portable lane export
(:meth:`Session.checkpoint` / :meth:`Session.restore`), so the fleet can
park a session to free its lane and revive it later, or
:meth:`LaneFleet.migrate` it onto a different member mid-run -- the
mechanism behind serving more sessions than there are live lanes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..kernels.config import KernelConfig

__all__ = [
    "FleetFullError",
    "LaneFleet",
    "LaneState",
    "Session",
]


class FleetFullError(RuntimeError):
    """Raised when no lane is free and the fleet may not grow."""


@dataclass
class LaneState:
    """A parked session: one portable lane export plus bookkeeping.

    ``payload`` is whatever the engine's ``export_lane`` produced --
    a plain slot-value list for the batch engine, a
    :class:`~repro.shard.ShardLaneState` for the sharded engine.  Both
    are plain Python ints, so a state moves between members freely (the
    sharded engine additionally validates the partition cut).
    """

    engine: str
    cycle: int
    payload: object
    poked: Dict[str, int] = field(default_factory=dict)


class Session:
    """One checked-out lane, dressed as a scalar simulator.

    Sessions are created by :meth:`LaneFleet.open_session`, never
    directly.  ``poke``/``peek`` hit the owning member's lane
    immediately; ``step`` goes through the fleet's coalescing barrier.
    The session tracks its own logical :attr:`cycle` (lanes of one
    member share the member's physical cycle counter, but sessions open
    at different times).
    """

    def __init__(self, fleet: "LaneFleet", session_id: int,
                 member: int, lane: int) -> None:
        self.fleet = fleet
        self.session_id = session_id
        self.member = member
        self.lane = lane
        self.cycle = 0
        self.pending = 0
        self.closed = False
        self._poked: Dict[str, int] = {}

    # -- scalar-compatible surface -------------------------------------
    def poke(self, name: str, value: int) -> None:
        self._ensure_open()
        self._poked[name] = int(value)
        self.fleet._poke_lane(self.member, name, self.lane, value)

    def peek(self, name: str) -> int:
        self._ensure_open()
        return self.fleet._peek_lane(self.member, name, self.lane)

    def step(self, cycles: int = 1, wait: bool = False,
             timeout: Optional[float] = None) -> int:
        """Request ``cycles`` cycles; returns how many actually ran.

        Non-blocking by default: the request is queued and the member
        advances as far as the coalescing barrier allows right now
        (possibly zero cycles, if a sibling session has not stepped
        yet).  With ``wait=True`` the call blocks until the full request
        has drained, raising :class:`TimeoutError` after ``timeout``
        seconds (a sibling session that never steps would block the
        barrier forever; servers should always pass a timeout).
        """
        self._ensure_open()
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        return self.fleet._step(self, cycles, wait, timeout)

    def run(self, cycles: int) -> int:
        return self.step(cycles)

    def activity_stats(self):
        """The hosting member engine's
        :class:`~repro.kernels.activity.ActivityStats` (``None`` on a
        plain kernel).  Member-level, not per-lane: the member's lanes
        share one kernel pass, so the counters describe the batch this
        session rides in (its lane's share shows up in ``lanes_active``
        vs ``lanes_skipped``)."""
        self._ensure_open()
        return self.fleet._members[self.member].sim.activity_stats

    # -- preemption ----------------------------------------------------
    def checkpoint(self) -> LaneState:
        """Portable snapshot of this session's lane."""
        self._ensure_open()
        return self.fleet._checkpoint(self)

    def restore(self, state: LaneState) -> None:
        """Load a :meth:`checkpoint` back into this session's lane."""
        self._ensure_open()
        self.fleet._restore(self, state)

    def close(self) -> None:
        """Release the lane (idempotent).  Siblings stop waiting on us."""
        if not self.closed:
            self.fleet._close(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self.closed:
            raise RuntimeError(f"session {self.session_id} is closed")

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"Session(id={self.session_id}, member={self.member}, "
            f"lane={self.lane}, cycle={self.cycle}, {state})"
        )


class _Member:
    """One batched engine plus its lane allocation map."""

    def __init__(self, sim, lanes: int, pristine: object) -> None:
        self.sim = sim
        self.lanes = lanes
        #: Lane state of a freshly constructed engine (registers at their
        #: initial values, inputs at zero) -- what a new checkout gets.
        self.pristine = pristine
        self.sessions: Dict[int, Session] = {}   # lane -> session
        self.free: List[int] = list(range(lanes))

    @property
    def open_sessions(self) -> List[Session]:
        return list(self.sessions.values())


class LaneFleet:
    """A pool of batched engines whose lanes are checked out per session.

    Parameters
    ----------
    design:
        FIRRTL text or a compiled design; elaborated/compiled **once**
        and shared by every member (with the artifact cache active even
        that single compile is a warm hit on a second process).
    engine:
        ``"batch"`` (one :class:`~repro.batch.BatchSimulator` per
        member) or ``"shard"`` (one
        :class:`~repro.shard.ShardedBatchSimulator` per member).
    lanes:
        Lanes (= session slots) per member.
    max_members:
        Member-count cap; ``open_session`` on a full fleet raises
        :class:`FleetFullError` once the cap is hit (``grow=False``
        caps at the eagerly-created first member).
    num_partitions / partitioner / max_replication / executor:
        Sharded-engine knobs, ignored for ``engine="batch"``.
    kernel / backend:
        Forwarded to the member engines.
    """

    def __init__(
        self,
        design,
        engine: str = "batch",
        lanes: int = 8,
        kernel: Union[str, KernelConfig] = "PSU",
        backend: str = "auto",
        num_partitions: int = 2,
        partitioner: str = "greedy",
        max_replication: Optional[float] = None,
        executor: str = "serial",
        max_members: int = 4,
        grow: bool = True,
    ) -> None:
        if engine not in ("batch", "shard"):
            raise ValueError(f"engine must be 'batch' or 'shard', got {engine!r}")
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        if max_members < 1:
            raise ValueError(f"max_members must be >= 1, got {max_members}")
        self.engine = engine
        self.lanes = lanes
        self.kernel = kernel
        self.backend = backend
        self.num_partitions = num_partitions
        self.partitioner = partitioner
        self.max_replication = max_replication
        self.executor = executor
        self.max_members = max_members if grow else 1
        self._cond = threading.Condition()
        self._members: List[_Member] = []
        self._next_session_id = 0
        self._closed = False

        # Compile once, share across members.  The batch engine wants an
        # OimBundle, the sharded engine a DataflowGraph; both
        # constructors pass a precompiled object straight through.
        if engine == "batch":
            from ..sim.simulator import compile_design

            self._compiled = compile_design(design)
        else:
            from ..sim.simulator import compile_graph

            self._compiled = compile_graph(design)
        self._add_member()

    # ------------------------------------------------------------------
    # Membership / checkout
    # ------------------------------------------------------------------
    def _make_sim(self):
        if self.engine == "batch":
            from ..batch.simulator import BatchSimulator

            return BatchSimulator(
                self._compiled, lanes=self.lanes, kernel=self.kernel,
                backend=self.backend,
            )
        from ..shard.simulator import ShardedBatchSimulator

        return ShardedBatchSimulator(
            self._compiled, lanes=self.lanes,
            num_partitions=self.num_partitions, kernel=self.kernel,
            backend=self.backend, executor=self.executor,
            partitioner=self.partitioner,
            max_replication=self.max_replication,
        )

    def _add_member(self) -> _Member:
        sim = self._make_sim()
        pristine = sim.export_lane(0)
        if self.engine == "shard":
            # Poking every input to zero on import also scrubs the
            # previous tenant's values out of the member's host-side
            # poked rows (a sibling's later poke re-sends whole rows).
            pristine.poked = {name: 0 for name in sim.inputs}
        member = _Member(sim, self.lanes, pristine)
        self._members.append(member)
        return member

    def open_session(self) -> Session:
        """Check out a free lane; grows a new member when all lanes of
        the existing ones are taken (up to ``max_members``)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("fleet is closed")
            for index, member in enumerate(self._members):
                if member.free:
                    return self._open_on(index)
            if len(self._members) < self.max_members:
                self._add_member()
                return self._open_on(len(self._members) - 1)
            raise FleetFullError(
                f"all {len(self._members)} member(s) x {self.lanes} lanes "
                "are checked out; close or park a session first"
            )

    def _open_on(self, member_index: int) -> Session:
        member = self._members[member_index]
        lane = member.free.pop(0)
        session = Session(self, self._next_session_id, member_index, lane)
        self._next_session_id += 1
        member.sessions[lane] = session
        # A fresh checkout must not inherit the previous tenant's state.
        self._blank_lane(member, lane)
        return session

    def _blank_lane(self, member: _Member, lane: int) -> None:
        member.sim.import_lane(lane, member.pristine)

    def _close(self, session: Session) -> None:
        with self._cond:
            session.closed = True
            member = self._members[session.member]
            if member.sessions.get(session.lane) is session:
                del member.sessions[session.lane]
                member.free.append(session.lane)
            # The departed session no longer gates the barrier.
            self._advance_locked(session.member)
            self._cond.notify_all()

    def _sim_of(self, member_index: int):
        return self._members[member_index].sim

    def _poke_lane(self, member_index: int, name: str, lane: int,
                   value: int) -> None:
        # Lane-targeted pokes read-modify-write whole slot rows, so
        # concurrent sessions of one member must serialise on the fleet
        # lock or lose each other's lanes.
        with self._cond:
            self._members[member_index].sim.poke_lane(name, lane, value)

    def _peek_lane(self, member_index: int, name: str, lane: int) -> int:
        with self._cond:
            return self._members[member_index].sim.peek_lane(name, lane)

    # ------------------------------------------------------------------
    # Coalesced stepping
    # ------------------------------------------------------------------
    def _step(self, session: Session, cycles: int, wait: bool,
              timeout: Optional[float]) -> int:
        import time as _time

        with self._cond:
            session.pending += cycles
            target = session.cycle + session.pending
            self._advance_locked(session.member)
            self._cond.notify_all()
            if wait:
                deadline = None if timeout is None else _time.monotonic() + timeout
                while session.pending > 0 and not session.closed:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - _time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError(
                                f"session {session.session_id}: barrier did "
                                f"not drain {session.pending} pending "
                                f"cycle(s) within {timeout}s (a sibling "
                                "session on the same member is not stepping)"
                            )
                    self._cond.wait(remaining)
            return cycles - max(0, target - session.cycle)

    def _advance_locked(self, member_index: int) -> None:
        """Step the member as far as the barrier allows.  Caller holds
        the fleet condition."""
        member = self._members[member_index]
        while True:
            sessions = member.open_sessions
            if not sessions:
                return
            burst = min(s.pending for s in sessions)
            if burst <= 0:
                return
            member.sim.step(burst)
            for s in sessions:
                s.pending -= burst
                s.cycle += burst

    # ------------------------------------------------------------------
    # Preemption / migration
    # ------------------------------------------------------------------
    def _checkpoint(self, session: Session) -> LaneState:
        with self._cond:
            member = self._members[session.member]
            return LaneState(
                engine=self.engine,
                cycle=session.cycle,
                payload=member.sim.export_lane(session.lane),
                poked=dict(session._poked),
            )

    def _restore(self, session: Session, state: LaneState) -> None:
        if state.engine != self.engine:
            raise ValueError(
                f"lane state is from a {state.engine!r}-engine fleet, "
                f"this fleet runs {self.engine!r}"
            )
        with self._cond:
            member = self._members[session.member]
            member.sim.import_lane(session.lane, state.payload)
            session.cycle = state.cycle
            session._poked = dict(state.poked)
            for name, value in state.poked.items():
                member.sim.poke_lane(name, session.lane, value)

    def migrate(self, session: Session, member_index: Optional[int] = None) -> int:
        """Move a live session onto another member (same design, any
        member); returns the new member index.  The session keeps its
        identity, cycle count, and poked inputs."""
        session._ensure_open()
        state = session.checkpoint()
        with self._cond:
            old = session.member
            if member_index is None:
                candidates = [
                    i for i, m in enumerate(self._members)
                    if i != old and m.free
                ]
                if not candidates and len(self._members) < self.max_members:
                    self._add_member()
                    candidates = [len(self._members) - 1]
                if not candidates:
                    raise FleetFullError(
                        "no other member has a free lane to migrate to"
                    )
                member_index = candidates[0]
            if member_index == old:
                return old
            target = self._members[member_index]
            if not target.free:
                raise FleetFullError(
                    f"member {member_index} has no free lane"
                )
            # Release the old lane, claim the new one.
            old_member = self._members[old]
            del old_member.sessions[session.lane]
            old_member.free.append(session.lane)
            new_lane = target.free.pop(0)
            session.member = member_index
            session.lane = new_lane
            target.sessions[new_lane] = session
            self._advance_locked(old)
            self._cond.notify_all()
        session.restore(state)
        return member_index

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def num_members(self) -> int:
        return len(self._members)

    @property
    def open_session_count(self) -> int:
        with self._cond:
            return sum(len(m.sessions) for m in self._members)

    @property
    def capacity(self) -> int:
        """Sessions the fleet can hold at full growth."""
        return self.max_members * self.lanes

    def activity_stats(self):
        """Aggregate :class:`~repro.kernels.activity.ActivityStats` over
        all member engines, or ``None`` when the fleet runs a plain
        kernel -- the fleet arm of the uniform stats surface (scalar,
        batch, shard, serve)."""
        from ..kernels.activity import merge_stats

        with self._cond:
            parts = [m.sim.activity_stats for m in self._members]
        if all(part is None for part in parts):
            return None
        return merge_stats(parts)

    def describe(self) -> dict:
        with self._cond:
            description = {
                "engine": self.engine,
                "lanes": self.lanes,
                "members": len(self._members),
                "max_members": self.max_members,
                "open_sessions": sum(len(m.sessions) for m in self._members),
                "capacity": self.capacity,
            }
        stats = self.activity_stats()
        if stats is not None:
            description["activity"] = stats.as_dict()
        return description

    def close(self) -> None:
        """Close all sessions and shut down member engines."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for member in self._members:
                for session in member.open_sessions:
                    session.closed = True
                member.sessions.clear()
                close = getattr(member.sim, "close", None)
                if close is not None:
                    close()
            self._cond.notify_all()

    def __enter__(self) -> "LaneFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"LaneFleet(engine={self.engine!r}, members={len(self._members)}, "
            f"lanes={self.lanes}, sessions={self.open_session_count})"
        )
