"""Simulation-as-a-service: asyncio server + sync client for a fleet.

The wire protocol is deliberately tiny: each frame is a 4-byte
big-endian length prefix followed by a UTF-8 JSON object (Python's
``json`` round-trips arbitrary-precision ints, so wide signal values
need no special casing).  Requests carry an ``op`` plus operands;
responses are ``{"ok": true, ...}`` or ``{"ok": false, "error": ...,
"kind": <exception class>}``.

Ops
---
``info``
    Fleet shape (:meth:`~repro.serve.fleet.LaneFleet.describe`).
``open`` / ``close``
    Check a lane out of / back into the fleet.  A connection's sessions
    are closed automatically when it drops, so a dead client never
    wedges the coalescing barrier for its siblings.
``poke`` / ``peek``
    Lane-targeted stimulus and observation.
``step``
    Blocking coalesced step: the call returns once the session's lane
    has advanced the requested cycles, which happens when every sibling
    session on the same member has stepped too (requests from
    concurrently-stepping clients coalesce into one batched kernel
    sweep).  Runs in a worker thread so the event loop keeps serving
    other clients meanwhile; a server-side timeout bounds the wait.
``checkpoint`` / ``restore``
    Portable lane state out/in (preemption across connections or
    servers).
``migrate``
    Move the session to another fleet member mid-run.

:func:`serve_in_thread` runs the server on a background event loop --
the in-process deployment used by the tests and the example; the CLI
(`python -m repro.experiments serve`) runs it in the foreground.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from .fleet import FleetFullError, LaneFleet, LaneState, Session

__all__ = [
    "FleetClient",
    "FleetServer",
    "RemoteSession",
    "ServerHandle",
    "connect_session",
    "serve_in_thread",
]


def connect_session(host: str, port: int,
                    timeout: Optional[float] = 60.0) -> "RemoteSession":
    """Open a dedicated connection holding exactly one session -- the
    right shape for clients that block in :meth:`RemoteSession.step`
    (sessions sharing one connection cannot coalesce their steps)."""
    client = FleetClient(host, port, timeout=timeout)
    session = client.open_session()
    session.owns_client = True
    return session

_LEN = struct.Struct(">I")
MAX_FRAME = 64 << 20


# ----------------------------------------------------------------------
# Lane-state <-> JSON (the checkpoint/restore payload)
# ----------------------------------------------------------------------
def state_to_json(state: LaneState) -> Dict[str, Any]:
    payload = state.payload
    if isinstance(payload, list):
        body: Dict[str, Any] = {"kind": "batch", "values": list(payload)}
    else:  # ShardLaneState (duck-typed to avoid importing repro.shard here)
        body = {
            "kind": "shard",
            "partitions": [list(v) for v in payload.partition_values],
            "cut": [list(c) for c in payload.cut],
            "poked": dict(payload.poked),
        }
    return {
        "engine": state.engine,
        "cycle": state.cycle,
        "payload": body,
        "poked": dict(state.poked),
    }


def state_from_json(doc: Dict[str, Any]) -> LaneState:
    body = doc["payload"]
    if body["kind"] == "batch":
        payload: Any = [int(v) for v in body["values"]]
    else:
        from ..shard.simulator import ShardLaneState

        payload = ShardLaneState(
            partition_values=[[int(v) for v in vals]
                              for vals in body["partitions"]],
            cut=tuple(tuple(c) for c in body["cut"]),
            poked={k: int(v) for k, v in body["poked"].items()},
        )
    return LaneState(
        engine=doc["engine"],
        cycle=int(doc["cycle"]),
        payload=payload,
        poked={k: int(v) for k, v in doc.get("poked", {}).items()},
    )


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def _encode(message: Dict[str, Any]) -> bytes:
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + body


async def _read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return json.loads(body.decode("utf-8"))


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class FleetServer:
    """Serve a :class:`LaneFleet` over TCP (length-prefixed JSON)."""

    def __init__(
        self,
        fleet: LaneFleet,
        host: str = "127.0.0.1",
        port: int = 0,
        step_timeout: float = 30.0,
    ) -> None:
        self.fleet = fleet
        self.host = host
        self.port = port
        self.step_timeout = step_timeout
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped: Optional[asyncio.Event] = None
        # Every open session may block in a coalescing step at once; the
        # default loop executor (~cpu+4 threads) starves under that --
        # a blocked step's siblings queue behind it and the barrier
        # deadlocks until timeout.  Size the pool to fleet capacity.
        self._pool = ThreadPoolExecutor(
            max_workers=fleet.capacity + 1,
            thread_name_prefix="repro-serve-step",
        )

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> Tuple[str, int]:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False)
        if self._stopped is not None:
            self._stopped.set()

    async def run_until_stopped(self) -> None:
        """Start (if needed) and serve until :meth:`stop` is called."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        await self._stopped.wait()

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        sessions: Dict[int, Session] = {}
        try:
            while True:
                request = await _read_frame(reader)
                if request is None:
                    break
                response = await self._dispatch(request, sessions)
                writer.write(_encode(response))
                await writer.drain()
        finally:
            # A vanished client must not gate its siblings' barrier.
            for session in sessions.values():
                try:
                    session.close()
                except Exception:
                    pass
            sessions.clear()
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def _session_of(self, request: Dict[str, Any],
                    sessions: Dict[int, Session]) -> Session:
        session_id = request.get("session")
        session = sessions.get(session_id)
        if session is None:
            raise KeyError(
                f"unknown session {session_id!r} on this connection"
            )
        return session

    async def _dispatch(self, request: Dict[str, Any],
                        sessions: Dict[int, Session]) -> Dict[str, Any]:
        try:
            op = request.get("op")
            if op == "info":
                return {"ok": True, **self.fleet.describe()}
            if op == "open":
                session = self.fleet.open_session()
                sessions[session.session_id] = session
                return {
                    "ok": True,
                    "session": session.session_id,
                    "member": session.member,
                    "lane": session.lane,
                }
            if op == "close":
                session = self._session_of(request, sessions)
                del sessions[session.session_id]
                session.close()
                return {"ok": True}
            if op == "poke":
                session = self._session_of(request, sessions)
                session.poke(request["name"], int(request["value"]))
                return {"ok": True}
            if op == "peek":
                session = self._session_of(request, sessions)
                return {"ok": True,
                        "value": session.peek(request["name"])}
            if op == "step":
                session = self._session_of(request, sessions)
                cycles = int(request.get("cycles", 1))
                wait = bool(request.get("wait", True))
                timeout = float(
                    request.get("timeout", self.step_timeout)
                )
                if wait:
                    # One request is in flight per connection, so a
                    # blocking step must not be issued for two sessions
                    # of the same connection (they could never coalesce
                    # with each other) -- use one connection per session,
                    # or wait=false offers.
                    loop = asyncio.get_running_loop()
                    advanced = await loop.run_in_executor(
                        self._pool,
                        lambda: session.step(
                            cycles, wait=True, timeout=timeout
                        ),
                    )
                else:
                    advanced = session.step(cycles, wait=False)
                return {"ok": True, "advanced": advanced,
                        "cycle": session.cycle,
                        "pending": session.pending}
            if op == "checkpoint":
                session = self._session_of(request, sessions)
                return {"ok": True,
                        "state": state_to_json(session.checkpoint())}
            if op == "restore":
                session = self._session_of(request, sessions)
                session.restore(state_from_json(request["state"]))
                return {"ok": True, "cycle": session.cycle}
            if op == "migrate":
                session = self._session_of(request, sessions)
                member = self.fleet.migrate(session)
                return {"ok": True, "member": member,
                        "lane": session.lane}
            raise ValueError(f"unknown op {op!r}")
        except Exception as exc:  # -> structured error frame
            return {
                "ok": False,
                "error": str(exc),
                "kind": type(exc).__name__,
            }


# ----------------------------------------------------------------------
# Background-thread deployment
# ----------------------------------------------------------------------
class ServerHandle:
    """A running :class:`FleetServer` on a background event loop."""

    def __init__(self, server: FleetServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop,
                 address: Tuple[str, int]) -> None:
        self.server = server
        self.thread = thread
        self.loop = loop
        self.address = address

    def close(self) -> None:
        if self.thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self.loop
            ).result(timeout=10)
            self.thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_in_thread(
    fleet: LaneFleet,
    host: str = "127.0.0.1",
    port: int = 0,
    step_timeout: float = 30.0,
) -> ServerHandle:
    """Run a :class:`FleetServer` on a daemon thread; returns a handle
    with the bound ``address`` and a ``close()``."""
    server = FleetServer(fleet, host, port, step_timeout)
    started = threading.Event()
    box: Dict[str, Any] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop

        async def main() -> None:
            try:
                box["address"] = await server.start()
            except Exception as exc:
                box["error"] = exc
                started.set()
                return
            started.set()
            await server.run_until_stopped()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("fleet server did not start within 30s")
    if "error" in box:
        raise box["error"]
    return ServerHandle(server, thread, box["loop"], box["address"])


# ----------------------------------------------------------------------
# Sync client
# ----------------------------------------------------------------------
class FleetClient:
    """Blocking stdlib-socket client for :class:`FleetServer`."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # -- framing -------------------------------------------------------
    def _recv_exactly(self, count: int) -> bytes:
        chunks: List[bytes] = []
        while count:
            chunk = self._sock.recv(count)
            if not chunk:
                raise ConnectionError("fleet server closed the connection")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def call(self, **request: Any) -> Dict[str, Any]:
        """One request/response round trip; raises on ``ok: false``."""
        self._sock.sendall(_encode(request))
        (length,) = _LEN.unpack(self._recv_exactly(_LEN.size))
        response = json.loads(self._recv_exactly(length).decode("utf-8"))
        if not response.get("ok"):
            kind = response.get("kind", "RuntimeError")
            error = response.get("error", "fleet server error")
            exc_type = {
                "KeyError": KeyError,
                "IndexError": IndexError,
                "ValueError": ValueError,
                "TimeoutError": TimeoutError,
                "FleetFullError": FleetFullError,
            }.get(kind, RuntimeError)
            raise exc_type(error)
        return response

    # -- surface -------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        return self.call(op="info")

    def open_session(self) -> "RemoteSession":
        response = self.call(op="open")
        return RemoteSession(self, response["session"],
                             response["member"], response["lane"])

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RemoteSession:
    """Client-side mirror of a fleet :class:`Session` -- the same
    scalar-compatible poke/peek/step surface, over the wire."""

    def __init__(self, client: FleetClient, session_id: int,
                 member: int, lane: int) -> None:
        self.client = client
        self.session_id = session_id
        self.member = member
        self.lane = lane
        self.cycle = 0
        self.pending = 0
        #: Set by :func:`connect_session`: closing the session also
        #: closes its dedicated connection.
        self.owns_client = False

    def poke(self, name: str, value: int) -> None:
        self.client.call(op="poke", session=self.session_id,
                         name=name, value=int(value))

    def peek(self, name: str) -> int:
        return self.client.call(
            op="peek", session=self.session_id, name=name
        )["value"]

    def step(self, cycles: int = 1, wait: bool = True,
             timeout: Optional[float] = None) -> int:
        """Blocking by default.  NB: the protocol allows one in-flight
        request per connection, so blocking steps for *several* sessions
        of one :class:`FleetClient` would serialize and never coalesce
        -- give each session its own client connection (see
        :func:`connect_session`), or drive them with ``wait=False``
        offers round-robin, as a local single-threaded driver would."""
        request: Dict[str, Any] = {
            "op": "step", "session": self.session_id, "cycles": cycles,
            "wait": wait,
        }
        if timeout is not None:
            request["timeout"] = timeout
        response = self.client.call(**request)
        self.cycle = response["cycle"]
        self.pending = response.get("pending", 0)
        return response["advanced"]

    def checkpoint(self) -> Dict[str, Any]:
        return self.client.call(
            op="checkpoint", session=self.session_id
        )["state"]

    def restore(self, state: Dict[str, Any]) -> None:
        response = self.client.call(
            op="restore", session=self.session_id, state=state
        )
        self.cycle = response["cycle"]

    def migrate(self) -> int:
        response = self.client.call(op="migrate", session=self.session_id)
        self.member = response["member"]
        self.lane = response["lane"]
        return self.member

    def close(self) -> None:
        try:
            self.client.call(op="close", session=self.session_id)
        finally:
            if self.owns_client:
                self.client.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc) -> None:
        try:
            self.close()
        except (ConnectionError, RuntimeError):
            pass
