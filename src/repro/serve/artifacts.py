"""Layer 1 of ``repro.serve``: the persistent compiled-artifact cache.

Nothing used to survive between Python processes: every run re-elaborated
the FIRRTL, re-partitioned (refined FM costs ~85 s on gemmini-32), and
re-lowered before simulating a single cycle.  GSIM's lesson is that the
win for large designs lives in compiling once and amortising across many
runs, so this module gives every expensive frontend product a
content-addressed home on disk:

* ``graph``     -- optimised :class:`~repro.graph.dfg.DataflowGraph`
  (elaboration + optimisation), keyed by the source text digest;
* ``bundle``    -- lowered :class:`~repro.oim.builder.OimBundle`, keyed
  by the source digest or the graph fingerprint;
* ``partition`` -- :class:`~repro.repcut.partition.PartitionResult`
  (including refined-FM results), keyed by graph fingerprint x
  (P, strategy, max_replication, ...);
* ``rum``       -- the derived :class:`RegisterUpdateMap`;
* ``sucodegen`` -- the SU codegen kernel's generated statement list;
* ``program``   -- the shared lowered :class:`~repro.lower.program.
  OimProgram` every kernel executes (walk layers, consumer transpose,
  leaf/commit tables; supersedes the pre-refactor ``oimwalk``/
  ``fiberwalk``/``limbplan`` kinds);
* ``cbin``      -- the compiled C batch backend's shared-object bytes,
  keyed by the program fingerprint plus host triple and compile flags
  (a warm start loads it without invoking a compiler);
* ``pgraph``    -- pickled partition graphs the process executor ships
  to workers by key instead of over the spawn pipe.

Entries are pickled with a versioned schema envelope, written atomically
(temp file + ``os.replace``), loaded corruption-tolerantly (a damaged or
mismatched entry is dropped and recomputed, never crashes), and bounded
by an LRU byte cap (eviction by access time).  Mutating operations
(store + eviction, clear) serialise across *processes* on an advisory
file lock (``.lock`` in the cache root), so fleet members and CI jobs
can share one ``REPRO_CACHE_DIR`` without racing each other's writes
and evictions; reads stay lock-free (atomic replace keeps every visible
entry internally consistent).

The cache is **off by default**.  It activates when the
``REPRO_CACHE_DIR`` environment variable names a directory, or when
:func:`configure_cache` is called explicitly; :func:`cache_through` is
the one helper call sites use, and it degrades to plain computation when
no cache is active.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # non-POSIX: single-writer semantics, no locking
    fcntl = None

#: Bump when the envelope layout or any cached type changes shape in a
#: way old payloads cannot satisfy; old-schema entries read as misses.
SCHEMA_VERSION = 1

#: Default LRU size cap (bytes); override per cache or with
#: ``REPRO_CACHE_BYTES``.
DEFAULT_MAX_BYTES = 1 << 30

#: Artifact kinds this schema knows; unknown kinds still round-trip, the
#: tuple exists for ``ls`` grouping and docs.
KINDS = ("graph", "bundle", "partition", "rum", "sucodegen", "program",
         "cbin", "pgraph")

#: Name of the advisory lock file serialising mutating operations.
LOCK_NAME = ".lock"


@dataclass
class CacheStats:
    """Counters for one :class:`ArtifactCache` instance (this process)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    #: Entries dropped because they failed to load (corruption, schema
    #: or digest mismatch) -- each one fell back to recompute.
    corrupt_drops: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt_drops": self.corrupt_drops,
        }


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk artifact, as listed by :meth:`ArtifactCache.entries`."""

    kind: str
    digest: str
    path: Path
    size_bytes: int
    mtime: float


class ArtifactCache:
    """A content-addressed, LRU-capped, corruption-tolerant pickle store.

    Filenames are ``<kind>-<digest>.pkl`` directly under ``root``; the
    digest is a SHA-256 over the design fingerprint plus every parameter
    that shapes the artifact, so a key collision *is* a content match.
    All failure modes of the storage layer (unreadable file, truncated
    pickle, foreign schema, permission trouble) surface as cache misses,
    never as exceptions: the sim stack must work identically with a
    broken cache and with no cache.
    """

    def __init__(
        self, root, max_bytes: Optional[int] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is None:
            max_bytes = int(os.environ.get("REPRO_CACHE_BYTES", DEFAULT_MAX_BYTES))
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def path_of(self, kind: str, digest: str) -> Path:
        return self.root / f"{kind}-{digest}.pkl"

    @contextlib.contextmanager
    def _locked(self):
        """Hold the cache's advisory file lock for a mutating operation.

        Blocks until the lock is free, so concurrent writers (fleet
        members, parallel CI jobs) serialise their store+evict sequences
        instead of racing.  Degrades to a no-op wherever locking cannot
        work (no ``fcntl``, unwritable root, exotic filesystems): the
        cache must keep functioning -- merely without cross-process
        exclusion -- per the broken-cache contract above.  Not
        re-entrant: callers holding the lock use the ``*_locked``
        internals rather than the public wrappers.
        """
        handle = None
        if fcntl is not None:
            try:
                handle = open(self.root / LOCK_NAME, "a+b")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                if handle is not None:
                    handle.close()
                    handle = None
        try:
            yield
        finally:
            if handle is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:
                    pass
                handle.close()

    def get(self, kind: str, digest: str):
        """The cached payload, or ``None`` on any kind of miss."""
        path = self.path_of(kind, digest)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Truncated write, foreign pickle, unreadable file: drop the
            # entry and recompute rather than crash.
            self._drop_corrupt(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != SCHEMA_VERSION
            or envelope.get("kind") != kind
            or envelope.get("digest") != digest
            or "payload" not in envelope
        ):
            self._drop_corrupt(path)
            return None
        self.stats.hits += 1
        self._touch(path)
        return envelope["payload"]

    def put(self, kind: str, digest: str, payload) -> Optional[Path]:
        """Store ``payload`` atomically; returns its path, or ``None`` if
        the payload could not be pickled or written.  The write and the
        follow-on eviction happen under the cache lock, so two processes
        storing into one directory cannot interleave a replace with the
        other's GC sweep."""
        envelope = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "digest": digest,
            "payload": payload,
        }
        path = self.path_of(kind, digest)
        try:
            blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None
        with self._locked():
            try:
                fd, tmp_name = tempfile.mkstemp(
                    prefix=f".{kind}-", suffix=".tmp", dir=self.root
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(blob)
                    os.replace(tmp_name, path)
                except BaseException:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
                    raise
            except Exception:
                return None
            self.stats.puts += 1
            self._gc_locked()
        return path

    # ------------------------------------------------------------------
    def entries(self) -> List[CacheEntry]:
        """Every live artifact, oldest-accessed first."""
        found: List[CacheEntry] = []
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return found
        for name in names:
            if not name.endswith(".pkl") or "-" not in name:
                continue
            kind, _, digest = name[:-4].partition("-")
            path = self.root / name
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append(
                CacheEntry(kind, digest, path, stat.st_size, stat.st_mtime)
            )
        found.sort(key=lambda entry: entry.mtime)
        return found

    @property
    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries())

    def gc(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until under the byte cap;
        returns the number evicted.  Takes the cache lock; callers that
        already hold it (``put``) use :meth:`_gc_locked`."""
        with self._locked():
            return self._gc_locked(max_bytes)

    def _gc_locked(self, max_bytes: Optional[int] = None) -> int:
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None or cap <= 0:
            return 0
        entries = self.entries()
        total = sum(entry.size_bytes for entry in entries)
        evicted = 0
        for entry in entries:
            if total <= cap:
                break
            try:
                entry.path.unlink()
            except OSError:
                continue
            total -= entry.size_bytes
            evicted += 1
            self.stats.evictions += 1
        return evicted

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        with self._locked():
            removed = 0
            for entry in self.entries():
                try:
                    entry.path.unlink()
                    removed += 1
                except OSError:
                    pass
            return removed

    # ------------------------------------------------------------------
    def _touch(self, path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    def _drop_corrupt(self, path: Path) -> None:
        self.stats.misses += 1
        self.stats.corrupt_drops += 1
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:
        return (
            f"ArtifactCache({str(self.root)!r}, "
            f"entries={len(self.entries())}, stats={self.stats.as_dict()})"
        )


# ----------------------------------------------------------------------
# The process-wide active cache
# ----------------------------------------------------------------------
_active: Optional[ArtifactCache] = None
_resolved_env = False


def get_cache() -> Optional[ArtifactCache]:
    """The active cache, or ``None``.

    Resolution order: an explicit :func:`configure_cache` wins; otherwise
    ``REPRO_CACHE_DIR`` (checked once per process) activates a cache at
    that directory.  A directory that cannot be created deactivates the
    cache rather than failing the simulation.
    """
    global _active, _resolved_env
    if _active is None and not _resolved_env:
        _resolved_env = True
        root = os.environ.get("REPRO_CACHE_DIR")
        if root:
            try:
                _active = ArtifactCache(root)
            except OSError:
                _active = None
    return _active


def configure_cache(
    root, max_bytes: Optional[int] = None
) -> ArtifactCache:
    """Activate (and return) a cache rooted at ``root`` for this process."""
    global _active, _resolved_env
    _active = ArtifactCache(root, max_bytes=max_bytes)
    _resolved_env = True
    return _active


def disable_cache() -> None:
    """Deactivate caching for this process (tests; explicit cold runs)."""
    global _active, _resolved_env
    _active = None
    _resolved_env = True


def cache_through(kind: str, digest: str, compute: Callable[[], object]):
    """``get`` or ``compute``-and-``put``: the one helper call sites use.

    With no active cache this is exactly ``compute()``; with one, a hit
    skips the computation and a miss stores its result for the next
    process.
    """
    cache = get_cache()
    if cache is None:
        return compute()
    cached = cache.get(kind, digest)
    if cached is not None:
        return cached
    result = compute()
    cache.put(kind, digest, result)
    return result


# ----------------------------------------------------------------------
# Deterministic fingerprints
# ----------------------------------------------------------------------
def _hasher() -> "hashlib._Hash":
    return hashlib.sha256()


def _finish(hasher, parts: Tuple = ()) -> str:
    for part in parts:
        hasher.update(repr(part).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def source_digest(source: str, **params) -> str:
    """Digest of FIRRTL source text plus compile parameters."""
    hasher = _hasher()
    hasher.update(source.encode())
    return _finish(hasher, tuple(sorted(params.items())))


def design_fingerprint(graph, **params) -> str:
    """Canonical hash of an elaborated :class:`DataflowGraph`.

    Covers everything that determines simulation behaviour -- node
    structure (op, operands, width, const value, signal name), inputs,
    outputs, register bookkeeping (init/reset/clock), and the observable
    signal map -- and nothing that does not (interning tables).  Node ids
    are construction-ordered and construction is deterministic from
    source, so the fingerprint is stable across processes and hosts.

    The graph-structure digest is memoised on the graph instance (graphs
    are immutable once compiled): a warm sharded build fingerprints the
    same graphs repeatedly (partition key, per-partition bundle keys,
    worker graph keys), and the node sweep dominates that path.
    """
    base = getattr(graph, "_repro_fingerprint_base", None)
    if base is None:
        hasher = _hasher()
        hasher.update(graph.name.encode())
        hasher.update(b"\x00")
        # One repr of the whole structure list runs at C speed; the
        # per-node loop it replaces dominated warm-start construction.
        hasher.update(repr([
            (node.op, node.operands, node.width, node.value, node.name)
            for node in graph.nodes
        ]).encode())
        hasher.update(b"\x00")
        hasher.update(repr(sorted(graph.inputs.items())).encode())
        hasher.update(b"\x01")
        hasher.update(repr(sorted(graph.outputs.items())).encode())
        hasher.update(b"\x02")
        hasher.update(repr([
            (name, reg.width, reg.state_nid, reg.next_nid,
             reg.init_value, reg.reset_input, reg.clock)
            for name, reg in sorted(graph.registers.items())
        ]).encode())
        hasher.update(b"\x03")
        hasher.update(repr(sorted(graph.signal_map.items())).encode())
        base = hasher.hexdigest()
        try:
            graph._repro_fingerprint_base = base
        except AttributeError:  # slotted/frozen graphs: recompute per call
            pass
    hasher = _hasher()
    hasher.update(base.encode())
    return _finish(hasher, tuple(sorted(params.items())))


def bundle_fingerprint(bundle, **params) -> str:
    """Canonical hash of a lowered :class:`OimBundle` (SU-codegen key).

    Covers the op-table vocabulary, the layered op records, slot widths,
    and constant preloads -- exactly the inputs of statement generation.
    """
    base = getattr(bundle, "_repro_fingerprint_base", None)
    if base is None:
        hasher = _hasher()
        hasher.update(bundle.design_name.encode())
        hasher.update(b"\x00")
        hasher.update(
            repr(tuple(entry.name for entry in bundle.op_table)).encode()
        )
        hasher.update(b"\x01")
        hasher.update(repr([
            [(record.s, record.n, record.operands) for record in layer]
            for layer in bundle.layers
        ]).encode())
        hasher.update(b"\x02")
        hasher.update(repr(tuple(bundle.slot_width)).encode())
        hasher.update(b"\x03")
        hasher.update(repr(tuple(bundle.const_slots)).encode())
        base = hasher.hexdigest()
        try:
            bundle._repro_fingerprint_base = base
        except AttributeError:
            pass
    hasher = _hasher()
    hasher.update(base.encode())
    return _finish(hasher, tuple(sorted(params.items())))
